"""Failure-domain guards for the serving layer: breakers and supervision.

Two primitives that bound how far a fault can spread inside
:class:`~repro.serve.service.InferenceService`:

* :class:`CircuitBreaker` — the classic closed / open / half-open state
  machine, one per dispatch backend.  A backend that fails persistently
  (consecutive failures, or a failure rate over a sliding window) is
  *tripped*: the dispatcher stops routing requests to it until a
  monotonic-clock cooldown elapses, then lets a bounded number of
  half-open probes through.  Probe success closes the breaker; probe
  failure re-opens it and restarts the cooldown.
* :class:`WorkerSupervisor` — owns the service's worker threads.  When a
  worker dies of an uncaught exception (anything outside the per-batch
  error handler) the supervisor records the crash and respawns a
  replacement, up to a restart budget; past the budget it declares the
  pool *exhausted* and fires a callback so the service can fail queued
  work instead of hanging it.

Both are deliberately free of serving-layer imports so they can be unit
tested with fake clocks and crash-on-demand threads, and both emit
``repro.obs`` counters (``serve.guard.*`` / ``serve.supervisor.*``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro import obs

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/recovery thresholds of one :class:`CircuitBreaker`.

    Attributes:
        consecutive_failures: Trip after this many failures in a row.
        failure_rate: Trip when the sliding-window failure rate reaches
            this fraction (only once ``min_samples`` calls are in the
            window, so a single early failure cannot trip a cold arm).
        window: Sliding-window length in calls.
        min_samples: Minimum window occupancy before the rate rule
            applies.
        cooldown_seconds: Open-state dwell time before half-open probing.
        half_open_probes: Probe calls admitted per half-open episode.
        half_open_successes: Probe successes required to close again
            (clamped to ``half_open_probes``).
    """

    consecutive_failures: int = 5
    failure_rate: float = 0.5
    window: int = 32
    min_samples: int = 10
    cooldown_seconds: float = 5.0
    half_open_probes: int = 2
    half_open_successes: int = 1

    def __post_init__(self) -> None:
        if self.consecutive_failures < 1:
            raise ValueError(
                "consecutive_failures must be >= 1, "
                f"got {self.consecutive_failures}"
            )
        if not 0.0 < self.failure_rate <= 1.0:
            raise ValueError(
                f"failure_rate must be in (0, 1], got {self.failure_rate}"
            )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.min_samples < 1:
            raise ValueError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )
        if self.cooldown_seconds <= 0:
            raise ValueError(
                f"cooldown_seconds must be positive, got {self.cooldown_seconds}"
            )
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )
        if not 1 <= self.half_open_successes <= self.half_open_probes:
            raise ValueError(
                "half_open_successes must be in [1, half_open_probes], "
                f"got {self.half_open_successes}"
            )


class CircuitBreaker:
    """Closed / open / half-open breaker around one failure domain.

    Args:
        name: Label attached to metrics (the backend name).
        config: Trip/recovery thresholds.
        clock: Monotonic clock injection point for tests.

    Thread safety: every method takes the internal lock; `allow` +
    `record_success`/`record_failure` may be called from concurrent
    serve workers.
    """

    def __init__(
        self,
        name: str = "",
        config: "BreakerConfig | None" = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.name = name
        self.config = config or BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive = 0
        self._window: "deque[bool]" = deque(maxlen=self.config.window)
        self._opened_at = 0.0
        self._probes_left = 0
        self._probe_successes = 0
        self.opened_total = 0
        self.closed_total = 0

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def _tick_locked(self) -> None:
        """Open -> half-open once the cooldown has elapsed."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at
            >= self.config.cooldown_seconds
        ):
            self._state = HALF_OPEN
            self._probes_left = self.config.half_open_probes
            self._probe_successes = 0
            obs.counter("serve.guard.breaker_half_open", backend=self.name).inc()

    def _trip_locked(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._consecutive = 0
        self._window.clear()
        self.opened_total += 1
        obs.counter("serve.guard.breaker_opened", backend=self.name).inc()

    def _close_locked(self) -> None:
        self._state = CLOSED
        self._consecutive = 0
        self._window.clear()
        self._probes_left = 0
        self._probe_successes = 0
        self.closed_total += 1
        obs.counter("serve.guard.breaker_closed", backend=self.name).inc()

    @property
    def state(self) -> str:
        """Current state, advancing open -> half-open on cooldown expiry."""
        with self._lock:
            self._tick_locked()
            return self._state

    def available(self) -> bool:
        """Whether a call *could* be admitted right now (non-consuming)."""
        with self._lock:
            self._tick_locked()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                return self._probes_left > 0
            return False

    def allow(self) -> bool:
        """Admit one call; half-open admissions consume a probe slot."""
        with self._lock:
            self._tick_locked()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and self._probes_left > 0:
                self._probes_left -= 1
                return True
            obs.counter("serve.guard.breaker_blocked", backend=self.name).inc()
            return False

    def record_success(self) -> None:
        """Fold one successful call into the state machine."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.config.half_open_successes:
                    self._close_locked()
            elif self._state == CLOSED:
                self._consecutive = 0
                self._window.append(False)
            # OPEN: a straggler from before the trip — ignore.

    def record_failure(self) -> None:
        """Fold one failed call in; may trip (closed) or re-open (probe)."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._trip_locked()
                return
            if self._state == OPEN:
                return
            self._consecutive += 1
            self._window.append(True)
            rate = sum(self._window) / len(self._window)
            if self._consecutive >= self.config.consecutive_failures or (
                len(self._window) >= self.config.min_samples
                and rate >= self.config.failure_rate
            ):
                self._trip_locked()

    def snapshot(self) -> dict:
        """Machine-readable state for health reports and run records."""
        with self._lock:
            self._tick_locked()
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive,
                "window_failures": int(sum(self._window)),
                "window_size": len(self._window),
                "opened_total": self.opened_total,
                "closed_total": self.closed_total,
            }


class WorkerPoolExhausted(RuntimeError):
    """The supervisor's restart budget is spent; the pool stays down."""


class WorkerSupervisor:
    """Spawns, watches, and respawns a pool of worker threads.

    Args:
        spawn: ``(worker_id) -> threading.Thread`` factory returning an
            *unstarted* thread whose target reports termination through
            :meth:`note_crash` / :meth:`note_exit`.
        n_workers: Initial pool size.
        restart_budget: Respawns allowed per ``restart_window`` seconds;
            the budget bounds crash loops.
        restart_window: Length of the sliding window the budget applies
            to.  A sustained crash *rate* above ``restart_budget`` per
            window exhausts the pool, while isolated transient bursts
            spread over a long-running service's lifetime do not.
            ``None`` restores the historical lifetime-total semantics
            (the budget never replenishes).
        on_exhausted: Callback fired once when the budget runs out (the
            service uses it to fail queued work instead of hanging it).
        clock: Monotonic clock injection point for tests.
    """

    def __init__(
        self,
        spawn: Callable[[int], threading.Thread],
        n_workers: int,
        *,
        restart_budget: int = 3,
        restart_window: "float | None" = None,
        on_exhausted: "Callable[[], None] | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if restart_budget < 0:
            raise ValueError(
                f"restart_budget must be >= 0, got {restart_budget}"
            )
        if restart_window is not None and restart_window <= 0:
            raise ValueError(
                f"restart_window must be positive or None, got {restart_window}"
            )
        self._spawn = spawn
        self.n_workers = n_workers
        self.restart_budget = restart_budget
        self.restart_window = restart_window
        self._on_exhausted = on_exhausted
        self._clock = clock
        self._lock = threading.Lock()
        self._threads: "dict[int, threading.Thread]" = {}
        self._next_id = 0
        self.restarts = 0
        self._restart_times: "deque[float]" = deque()
        self.crashes: "list[dict]" = []
        self.exhausted = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the initial pool."""
        with self._lock:
            for _ in range(self.n_workers):
                self._spawn_locked()

    def _spawn_locked(self) -> None:
        worker_id = self._next_id
        self._next_id += 1
        thread = self._spawn(worker_id)
        self._threads[worker_id] = thread
        thread.start()

    def join(self) -> None:
        """Join every worker, including replacements spawned mid-join."""
        while True:
            with self._lock:
                pending = [t for t in self._threads.values() if t.is_alive()]
            if not pending:
                return
            for thread in pending:
                thread.join()

    # ------------------------------------------------------------------
    # Termination reports (called from inside the dying worker)
    # ------------------------------------------------------------------
    def note_exit(self, worker_id: int) -> None:
        """A worker finished cleanly (service drain/close)."""
        with self._lock:
            self._threads.pop(worker_id, None)

    def _budget_left_locked(self, now: float) -> bool:
        """Whether the (possibly windowed) restart budget has room."""
        if self.restart_window is None:
            return self.restarts < self.restart_budget
        cutoff = now - self.restart_window
        while self._restart_times and self._restart_times[0] < cutoff:
            self._restart_times.popleft()
        return len(self._restart_times) < self.restart_budget

    def note_crash(self, worker_id: int, exc: BaseException) -> bool:
        """A worker died of ``exc``; respawn within budget.

        Returns ``True`` when a replacement was spawned, ``False`` when
        the budget is exhausted (the ``on_exhausted`` callback fires
        exactly once, outside the lock).
        """
        fire_exhausted = False
        with self._lock:
            self._threads.pop(worker_id, None)
            now = self._clock()
            self.crashes.append(
                {
                    "worker_id": worker_id,
                    "error": f"{type(exc).__name__}: {exc}",
                    "at": now,
                }
            )
            obs.counter("serve.supervisor.crashes").inc()
            if self._budget_left_locked(now):
                self.restarts += 1
                self._restart_times.append(now)
                obs.counter("serve.supervisor.restarts").inc()
                self._spawn_locked()
                respawned = True
            else:
                respawned = False
                if not self.exhausted:
                    self.exhausted = True
                    fire_exhausted = True
                    obs.gauge("serve.supervisor.exhausted").set(1.0)
        if fire_exhausted and self._on_exhausted is not None:
            self._on_exhausted()
        return respawned

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def alive_count(self) -> int:
        """Supervised workers currently alive."""
        with self._lock:
            return sum(1 for t in self._threads.values() if t.is_alive())

    def recent_crashes(self, window_seconds: float) -> int:
        """Crashes recorded within the trailing ``window_seconds``."""
        cutoff = self._clock() - window_seconds
        with self._lock:
            return sum(1 for crash in self.crashes if crash["at"] >= cutoff)

    def snapshot(self) -> dict:
        """Machine-readable pool state for health reports."""
        with self._lock:
            if self.restart_window is None:
                windowed = None
            else:
                cutoff = self._clock() - self.restart_window
                windowed = sum(1 for at in self._restart_times if at >= cutoff)
            return {
                "n_workers": self.n_workers,
                "alive": sum(1 for t in self._threads.values() if t.is_alive()),
                "restarts": self.restarts,
                "restart_budget": self.restart_budget,
                "restart_window": self.restart_window,
                "restarts_in_window": windowed,
                "crashes": len(self.crashes),
                "exhausted": self.exhausted,
                "last_crash": (
                    dict(self.crashes[-1]) if self.crashes else None
                ),
            }
