"""The inference service: bounded queue, micro-batching, load shedding.

:class:`InferenceService` is the request path the ROADMAP's serving story
needs on top of the one-shot experiment harness:

* **Bounded admission.**  ``submit`` enqueues into a bounded queue; when
  it is full the request is *rejected immediately* with a ``503``-style
  :data:`REJECTED` response instead of growing memory without bound.
* **Dynamic micro-batching.**  Worker threads group queued requests by
  the full content fingerprint of their adjacency matrix *and* their
  feature width, and flush a batch when it reaches ``max_batch`` or the
  oldest member has waited ``max_wait_ms``.  A batch executes as *one*
  SpMM — the dense operands are concatenated column-wise
  (``A @ [X1 | X2 | ...]``), which is exactly how GNN serving amortizes
  aggregation across users of the same graph — then split back per
  request (each reply owns its output; nothing aliases the shared batch
  result).
* **Adaptive dispatch.**  Each batch runs through an
  :class:`~repro.serve.dispatch.AdaptiveDispatcher`, so backend choice
  improves as traffic flows, and any oracle failure degrades to the
  verified fallback rather than returning a corrupt product.
* **Deadlines.**  ``submit(deadline_ms=...)`` stamps a request with a
  wall-clock budget.  Requests already past their deadline are *shed
  before execution* with a :data:`DEADLINE_EXCEEDED` response, and a
  batch runs under the minimum remaining deadline of its members
  (combined with the per-batch ``request_timeout``) via
  :func:`repro.resilience.runtime.call_with_timeout`.
* **Worker supervision.**  A
  :class:`~repro.serve.guard.WorkerSupervisor` owns the worker pool: a
  worker that dies of an uncaught exception has its in-flight batch
  failed cleanly (never hung) and is respawned up to a restart budget;
  past the budget the pool is *exhausted*, queued work is failed, and
  new submissions are rejected.
* **Health.**  :meth:`InferenceService.health` reports
  ``HEALTHY / DEGRADED / UNHEALTHY`` with machine-readable causes (open
  breakers, recent crashes, queue saturation, deadline-miss rate); see
  :mod:`repro.serve.health`.

Every stage emits ``repro.obs`` counters and spans (``serve.service.*``).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.formats import CSRMatrix
from repro.obs import rtrace
from repro.obs.slo import SLOTracker
from repro.resilience import faults
from repro.resilience.oracles import check_output
from repro.resilience.runtime import ExperimentTimeoutError, call_with_timeout
from repro.sample import EgoSubgraph, gather_features, sample_ego
from repro.serve.dispatch import AdaptiveDispatcher
from repro.serve.epoch import EpochLease, GraphEpochManager
from repro.serve.guard import WorkerSupervisor
from repro.serve.health import HealthPolicy, HealthReport, evaluate_health
from repro.serve.plancache import PlanCache
from repro.serve.procpool import (
    QUARANTINED,
    WORKER_CRASHED,
    PoolError,
    ProcessWorkerPool,
    ProcPoolConfig,
    QuarantinedError,
    WorkerCrashError,
    poison_key,
)

OK = "ok"
REJECTED = "rejected"
ERROR = "error"
DEADLINE_EXCEEDED = "deadline_exceeded"
# WORKER_CRASHED / QUARANTINED (terminal statuses of the process
# isolation tier) are re-exported from repro.serve.procpool above.

# Sliding window of recent request outcomes backing the health surface's
# deadline-miss rate.
_MISS_WINDOW = 256


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one :class:`InferenceService`.

    Attributes:
        max_queue: Admission bound; requests beyond it are shed.
        max_batch: Micro-batch flush size.
        max_wait_ms: Micro-batch flush deadline, measured from the oldest
            batched request's enqueue time.
        n_workers: Batch-executing worker threads.
        request_timeout: Per-batch wall-clock budget in seconds
            (``None`` disables; see :mod:`repro.resilience.runtime`).
            Request deadlines tighten this further per batch.
        restart_budget: Worker respawns the supervisor allows (per
            ``restart_window_seconds`` when set, else over the service's
            lifetime) before declaring the pool exhausted.
        restart_window_seconds: Sliding window for the restart budget
            (see :class:`~repro.serve.guard.WorkerSupervisor`); ``None``
            keeps the budget a lifetime total.
        verify: Cross-check every batch output against the independent
            reference before replying (failures degrade to the verified
            fallback inside the dispatcher; with process isolation the
            check runs in the parent, outside the worker's failure
            domain).
        isolation: ``"thread"`` executes batches on this process's
            worker threads through the adaptive dispatcher;
            ``"process"`` executes them on supervised worker
            *subprocesses* attached zero-copy to shared-memory graph
            segments (:mod:`repro.serve.procpool`): crashes, hangs and
            memory blowups are contained to the worker and answered
            with terminal statuses instead of taking the service down;
            ``"shard"`` partitions the graph across ``num_shards``
            single-shard pools behind a
            :class:`~repro.shard.router.ShardRouter` — each batch
            scatters to the owning shards, runs per-shard SpMM
            concurrently, and halo-gathers the partial boundary-row
            outputs (see ``docs/SHARDING.md``).
        num_shards: Graph shards when ``isolation="shard"`` (ignored
            otherwise).
    """

    max_queue: int = 64
    max_batch: int = 8
    max_wait_ms: float = 2.0
    n_workers: int = 2
    request_timeout: "float | None" = None
    restart_budget: int = 3
    restart_window_seconds: "float | None" = None
    verify: bool = False
    isolation: str = "thread"
    num_shards: int = 2

    def __post_init__(self) -> None:
        if self.isolation not in ("thread", "process", "shard"):
            raise ValueError(
                "isolation must be 'thread', 'process' or 'shard', "
                f"got {self.isolation!r}"
            )
        if self.num_shards < 1:
            raise ValueError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if (
            self.restart_window_seconds is not None
            and self.restart_window_seconds <= 0
        ):
            raise ValueError(
                "restart_window_seconds must be positive or None, "
                f"got {self.restart_window_seconds}"
            )
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.restart_budget < 0:
            raise ValueError(
                f"restart_budget must be >= 0, got {self.restart_budget}"
            )


@dataclass(frozen=True)
class ServeResponse:
    """Reply to one inference request.

    Attributes:
        request_id: Monotonic id assigned at submission.
        status: ``"ok"``, ``"rejected"`` (load shed at admission),
            ``"deadline_exceeded"`` (shed or cut off past its deadline),
            or ``"error"`` (batch timeout, worker crash, or unexpected
            executor failure).
        output: The product for this request's operand (``None`` unless
            ``ok``).
        backend: Dispatcher backend that served the batch.
        fallback_used: Whether the verified fallback produced the output.
        batch_size: Number of requests that shared the execution.
        queue_seconds: Admission-to-execution wait.
        service_seconds: Execution-to-reply wall time (includes this
            request's copy-out), so ``queue_seconds + service_seconds``
            is the request's end-to-end latency.
        error: Failure description for non-``ok`` statuses.
        trace_id: Request-trace id (:mod:`repro.obs.rtrace`); ``None``
            only for requests rejected at admission.
        attribution: Per-stage latency ledger
            (``{"stages": {stage: seconds}, "events": {event: count}}``).
            Stage seconds are non-overlapping leaves summing to the
            end-to-end latency.
        epoch: Graph epoch this request admitted under (epoch-managed
            services only; ``None`` otherwise).  An ``ok`` output is
            guaranteed to be the product against exactly this epoch's
            snapshot, regardless of updates applied mid-flight.
    """

    request_id: int
    status: str
    output: "np.ndarray | None" = field(default=None, repr=False)
    backend: "str | None" = None
    fallback_used: bool = False
    batch_size: int = 0
    queue_seconds: float = 0.0
    service_seconds: float = 0.0
    error: "str | None" = None
    trace_id: "str | None" = None
    attribution: "dict | None" = field(default=None, repr=False)
    epoch: "int | None" = None

    @property
    def ok(self) -> bool:
        """Whether the request completed with a verified output."""
        return self.status == OK

    @property
    def rejected(self) -> bool:
        """Whether admission shed the request before execution."""
        return self.status == REJECTED

    @property
    def deadline_exceeded(self) -> bool:
        """Whether the request ran out of deadline budget."""
        return self.status == DEADLINE_EXCEEDED


@dataclass(frozen=True)
class EgoSubmission:
    """Handle on one in-flight ego request (see :meth:`submit_ego`).

    Attributes:
        future: Resolves to the :class:`ServeResponse` for the *subgraph*
            aggregation (its ``output`` rows follow ``subgraph.nodes``).
        subgraph: The sampled, relabeled ego network the request runs on
            — already final at submission time, so callers can verify the
            response against it (and against the epoch it was sampled
            from) without re-sampling.
        epoch: Graph epoch the sample was drawn from (epoch-managed
            services only).
        sample_seconds: Wall time spent sampling + extracting, charged to
            the request's ``sample`` attribution stage.
    """

    future: "Future[ServeResponse]"
    subgraph: EgoSubgraph
    epoch: "int | None" = None
    sample_seconds: float = 0.0

    def result(self, timeout: "float | None" = None) -> ServeResponse:
        """Block for the sampled request's response."""
        return self.future.result(timeout=timeout)


@dataclass
class _Pending:
    request_id: int
    matrix: CSRMatrix
    dense: np.ndarray
    # (full content fingerprint, feature width, class-tier flag): only
    # requests that share the matrix values, the dense width, and the
    # dispatch path may batch together.
    key: "tuple[str, int, bool]"
    enqueued_at: float
    future: "Future[ServeResponse]"
    # Request-trace context carried explicitly across the queue and
    # worker-thread boundary (see repro.obs.rtrace).
    ctx: rtrace.RequestContext = None  # type: ignore[assignment]
    # Absolute monotonic deadline; None = no deadline.
    deadline: "float | None" = None
    # When a worker pulled this request into a forming batch (monotonic);
    # 0.0 until then.  Splits queue wait from batch-formation wait.
    picked_at: float = 0.0
    # Epoch lease pinning the snapshot this request admitted under
    # (epoch-managed services only); released in _finalize, the single
    # choke point every terminal path passes through.
    lease: "EpochLease | None" = None
    epoch: "int | None" = None
    # Ego requests dispatch through the structure-class tier instead of
    # the per-fingerprint bandit (their fingerprints never recur).
    use_class_tier: bool = False
    # Seconds pre-charged to the ledger before admission (the "sample"
    # stage); reconciliation adds it on top of the admission-to-reply
    # latency so the stage sum equals the *full* end-to-end time.
    pre_seconds: float = 0.0
    # Quarantine identity (graph fingerprint + dense bytes); set only
    # when the service runs with process isolation.
    poison_key: "str | None" = None


class InferenceService:
    """A multi-worker, micro-batching GNN aggregation service.

    Args:
        dispatcher: Backend dispatcher; a default
            :class:`AdaptiveDispatcher` is built when omitted.
        config: Queueing/batching tunables.
        plan_cache: Plan cache handed to a default dispatcher.
        slo_tracker: Per-route SLO accounting fed every finished request
            (a default :class:`~repro.obs.slo.SLOTracker` when omitted);
            its burn rates feed :meth:`health`.
        flight_recorder: Bounded retention of the slowest/failed request
            traces (a default
            :class:`~repro.obs.rtrace.FlightRecorder` when omitted).
        epoch_manager: Live-graph epoch manager
            (:class:`~repro.serve.epoch.GraphEpochManager`).  When set,
            ``submit(None, dense)`` serves against the current epoch's
            snapshot under an RCU read lease, :meth:`apply_updates`
            installs new epochs atomically, and :meth:`health` reports
            epoch lag and compaction backlog.
        proc_pool: Process-isolation executor — a
            :class:`~repro.serve.procpool.ProcessWorkerPool` or a
            :class:`~repro.shard.router.ShardRouter` (both speak the
            same execution protocol).  Passing one enables process
            isolation regardless of ``config.isolation``; with
            ``config.isolation="process"`` (or ``"shard"``) and no pool
            given, the service builds and owns one (sized by
            ``proc_config``/``shard_config`` or
            ``config.n_workers``/``config.num_shards``).
        proc_config: Tunables for a service-built pool, and the
            per-shard pool template under ``isolation="shard"``
            (ignored when ``proc_pool`` is passed).
        shard_config: Tunables for a service-built
            :class:`~repro.shard.router.ShardRouter` under
            ``isolation="shard"`` (its ``n_shards`` defaults from
            ``config.num_shards``; ignored when ``proc_pool`` is
            passed).

    Use as a context manager (``with InferenceService() as svc``) or call
    :meth:`start`/:meth:`close` explicitly.
    """

    def __init__(
        self,
        dispatcher: "AdaptiveDispatcher | None" = None,
        config: "ServeConfig | None" = None,
        *,
        plan_cache: "PlanCache | None" = None,
        slo_tracker: "SLOTracker | None" = None,
        flight_recorder: "rtrace.FlightRecorder | None" = None,
        epoch_manager: "GraphEpochManager | None" = None,
        proc_pool: "ProcessWorkerPool | None" = None,
        proc_config: "ProcPoolConfig | None" = None,
        shard_config: "object | None" = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.dispatcher = dispatcher or AdaptiveDispatcher(
            plan_cache=plan_cache
        )
        self.epoch_manager = epoch_manager
        self._proc_pool = proc_pool
        self._proc_config = proc_config
        self._shard_config = shard_config
        self._owns_proc_pool = False
        self._pool_isolation = "process"
        self.slo = slo_tracker if slo_tracker is not None else SLOTracker()
        self.flight_recorder = (
            flight_recorder
            if flight_recorder is not None
            else rtrace.FlightRecorder()
        )
        self._cond = threading.Condition()
        self._queue: "deque[_Pending]" = deque()
        self._closed = False
        self._started = False
        self._ids = itertools.count()
        self._supervisor: "WorkerSupervisor | None" = None
        # Per-worker in-flight batch; each slot is touched only by its
        # owning worker thread (and its crash handler, same thread).
        self._inflight: "dict[int, list[_Pending]]" = {}
        self._miss_lock = threading.Lock()
        self._recent_misses: "deque[bool]" = deque(maxlen=_MISS_WINDOW)
        self._deadline_misses = 0
        # Per-service sequence feeding default ego-sampling rngs, so two
        # unseeded submissions of the same seed node draw distinct (but
        # reproducible-within-a-service) neighborhoods.
        self._ego_seq = itertools.count()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InferenceService":
        """Spawn the supervised worker pool (idempotent)."""
        with self._cond:
            if self._closed:
                raise RuntimeError("service is closed")
            if self._started:
                return self
            self._started = True
        if self._proc_pool is None and self.config.isolation == "process":
            import dataclasses

            proc_config = self._proc_config or dataclasses.replace(
                ProcPoolConfig(), n_workers=self.config.n_workers
            )
            self._proc_pool = ProcessWorkerPool(proc_config)
            self._owns_proc_pool = True
        elif self._proc_pool is None and self.config.isolation == "shard":
            # Imported lazily: repro.shard sits above repro.serve in the
            # layering, so the serve package must not import it eagerly.
            import dataclasses

            from repro.shard.router import ShardConfig, ShardRouter

            shard_config = self._shard_config or dataclasses.replace(
                ShardConfig(), n_shards=self.config.num_shards
            )
            self._proc_pool = ShardRouter(
                shard_config, proc_config=self._proc_config
            )
            self._owns_proc_pool = True
        if self._proc_pool is not None:
            self._pool_isolation = (
                "shard"
                if hasattr(self._proc_pool, "partition_for")
                else "process"
            )
            # Fork the worker subprocesses before spinning up this
            # process's own thread churn.
            self._proc_pool.start()
            if self.epoch_manager is not None and callable(
                getattr(self._proc_pool, "invalidate_fingerprint", None)
            ):
                # Shard routers cache partitions per graph fingerprint;
                # retiring an epoch (e.g. after compaction) drops its
                # partition so the next epoch re-partitions fresh.
                self.epoch_manager.register_cache(self._proc_pool)
        self._supervisor = WorkerSupervisor(
            self._spawn_worker,
            self.config.n_workers,
            restart_budget=self.config.restart_budget,
            restart_window=self.config.restart_window_seconds,
            on_exhausted=self._on_pool_exhausted,
        )
        self._supervisor.start()
        return self

    def close(self) -> None:
        """Stop accepting requests, drain the queue, join the workers."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        if self._supervisor is not None:
            self._supervisor.join()
        # If the pool died mid-drain (budget exhausted), whatever is
        # still queued must fail, never hang.
        self._abandon_queue("service closed with no live workers")
        if self._proc_pool is not None and self._owns_proc_pool:
            self._proc_pool.close()

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(
        self,
        matrix: "CSRMatrix | None",
        dense: np.ndarray,
        *,
        deadline_ms: "float | None" = None,
        route: str = "default",
    ) -> "Future[ServeResponse]":
        """Enqueue one aggregation request ``matrix @ dense``.

        Args:
            matrix: Sparse adjacency operand.  ``None`` on an
                epoch-managed service serves against the **current
                epoch's snapshot**: the request takes a read lease at
                admission and executes against exactly that snapshot
                even if :meth:`apply_updates` installs newer epochs
                while it is queued or batched.
            dense: Dense feature operand.
            deadline_ms: Wall-clock budget for the whole request
                (queueing + execution).  A request still queued past its
                deadline is shed with a :data:`DEADLINE_EXCEEDED`
                response *before* execution, and batch execution is cut
                off at the batch's minimum remaining deadline.
            route: Logical route name grouping this request for SLO
                accounting (e.g. the dataset or tenant it belongs to).

        Returns a future that resolves to a :class:`ServeResponse`.  When
        the bounded queue is full (or the worker pool is exhausted) the
        future resolves *immediately* with a ``rejected`` response —
        explicit load shedding, never unbounded growth.
        """
        lease, matrix = self._resolve_operand(matrix, "submit")
        return self._enqueue(
            matrix, dense, deadline_ms=deadline_ms, route=route, lease=lease
        )

    def submit_ego(
        self,
        seed_node: int,
        features: np.ndarray,
        *,
        matrix: "CSRMatrix | None" = None,
        fanouts: "tuple[int, ...]" = (10, 5),
        add_self_loops: bool = False,
        rng: "np.random.Generator | None" = None,
        deadline_ms: "float | None" = None,
        route: str = "ego",
    ) -> EgoSubmission:
        """Sample an ego network around ``seed_node`` and serve it.

        Samples a k-hop fanout neighborhood (:func:`repro.sample.sampler.
        sample_ego`), extracts the relabeled induced subgraph, gathers
        the sampled nodes' feature rows, and enqueues the *subgraph*
        aggregation.  On an epoch-managed service the sample is drawn
        under a read lease taken **before** sampling, so the subgraph,
        its version stamp, and the eventual output all belong to exactly
        one epoch even if updates land mid-flight.

        Ego requests dispatch through the structure-class tier
        (:mod:`repro.sample.classtier`) rather than the per-fingerprint
        bandit — each subgraph's fingerprint occurs once, so fingerprint
        keys can never amortize.  Sampling time is charged to the
        ``sample`` attribution stage; for ego requests the attribution's
        stage sum therefore equals ``sample_seconds`` *plus* the
        admission-to-reply latency.

        Args:
            seed_node: Global id of the ego center.
            features: Full-graph feature matrix ``(n_nodes, d)``; the
                subgraph's rows are gathered from it at submission.
            matrix: Graph adjacency; ``None`` uses the epoch manager's
                current snapshot (like :meth:`submit`).
            fanouts: Per-hop neighbor caps (see
                :class:`~repro.sample.sampler.FanoutSampler`).
            add_self_loops: Insert missing diagonal entries into the
                extracted subgraph (GCN-style ``A + I``).
            rng: Sampling randomness; ``None`` draws a fresh deterministic
                stream per submission (seeded by the seed node and a
                service-local sequence number).
            deadline_ms: As for :meth:`submit` (covers queueing +
                execution, not sampling — sampling happens synchronously
                in the caller before admission).
            route: SLO route; defaults to ``"ego"`` so ego traffic gets
                its own error budget.
        """
        lease, matrix = self._resolve_operand(matrix, "submit_ego")
        try:
            features = np.asarray(features, dtype=np.float64)
            if features.ndim != 2 or features.shape[0] != matrix.n_cols:
                raise ValueError(
                    "features must have one row per graph node "
                    f"({matrix.n_cols}), got shape {features.shape}"
                )
            if rng is None:
                with self._cond:
                    sequence = next(self._ego_seq)
                rng = np.random.default_rng((int(seed_node), sequence))
            started = time.perf_counter()
            with obs.span("serve.service.sample", seed=int(seed_node)):
                ego = sample_ego(
                    matrix,
                    int(seed_node),
                    fanouts=tuple(fanouts),
                    rng=rng,
                    add_self_loops=add_self_loops,
                )
                sub_features = gather_features(features, ego.nodes)
            sample_seconds = time.perf_counter() - started
        except Exception:
            if lease is not None:
                lease.release()
            raise
        obs.counter("serve.service.ego_submitted").inc()
        obs.histogram("serve.service.ego_nodes").observe(float(ego.n_nodes))
        obs.histogram("serve.service.ego_nnz").observe(float(ego.nnz))
        future = self._enqueue(
            ego.matrix,
            sub_features,
            deadline_ms=deadline_ms,
            route=route,
            lease=lease,
            pre_stages={"sample": sample_seconds},
            use_class_tier=True,
        )
        return EgoSubmission(
            future=future,
            subgraph=ego,
            epoch=lease.epoch if lease is not None else None,
            sample_seconds=sample_seconds,
        )

    def _resolve_operand(
        self, matrix: "CSRMatrix | None", caller: str
    ) -> "tuple[EpochLease | None, CSRMatrix]":
        """Resolve ``matrix=None`` to the current epoch's snapshot."""
        if matrix is not None:
            return None, matrix
        if self.epoch_manager is None:
            raise ValueError(
                f"{caller}(matrix=None) requires an epoch-managed service "
                "(pass epoch_manager= to InferenceService)"
            )
        lease = self.epoch_manager.acquire()
        return lease, lease.matrix

    def _enqueue(
        self,
        matrix: CSRMatrix,
        dense: np.ndarray,
        *,
        deadline_ms: "float | None",
        route: str,
        lease: "EpochLease | None",
        pre_stages: "dict[str, float] | None" = None,
        use_class_tier: bool = False,
    ) -> "Future[ServeResponse]":
        """Validate, admit (or shed), and queue one request."""
        try:
            dense = np.asarray(dense, dtype=np.float64)
            if dense.ndim != 2:
                raise ValueError(
                    f"dense operand must be 2-D, got shape {dense.shape}"
                )
            if dense.shape[0] != matrix.n_cols:
                raise ValueError(
                    f"dimension mismatch: {matrix.shape} @ {dense.shape}"
                )
            if deadline_ms is not None and deadline_ms <= 0:
                raise ValueError(
                    f"deadline_ms must be positive, got {deadline_ms}"
                )
        except Exception:
            if lease is not None:
                lease.release()
            raise
        # Process-isolation admission inputs are gathered outside the
        # lock: the poison key hashes the operands and the memory guard
        # reads /proc.
        pkey: "str | None" = None
        memory_pressure = False
        if self._proc_pool is not None:
            pkey = poison_key(
                matrix.fingerprint(include_values=True), dense
            )
            memory_pressure = self._proc_pool.memory_pressure()
        future: "Future[ServeResponse]" = Future()
        with self._cond:
            # Admission checks come before any id/metric allocation so
            # the submitted counter only ever counts requests that were
            # actually admitted or explicitly shed.
            if self._closed or not self._started:
                if lease is not None:
                    lease.release()
                raise RuntimeError(
                    "service is closed"
                    if self._closed
                    else "service is not started"
                )
            request_id = next(self._ids)
            obs.counter("serve.service.submitted").inc()
            if pkey is not None and self._proc_pool.is_quarantined(pkey):
                # Poison content never reaches another worker: terminal
                # answer at admission, no execution.
                obs.counter("serve.service.quarantined").inc()
                error = (
                    "request content quarantined after repeatedly "
                    "killing workers"
                )
                if lease is not None:
                    lease.release()
                future.set_result(
                    ServeResponse(
                        request_id=request_id,
                        status=QUARANTINED,
                        error=error,
                    )
                )
                self.slo.observe(route, 0.0, ok=False)
                self.flight_recorder.record(
                    {
                        "trace_id": None,
                        "request_id": request_id,
                        "route": route,
                        "status": QUARANTINED,
                        "total_seconds": 0.0,
                        "stages": {},
                        "events": {},
                        "error": error,
                    }
                )
                return future
            exhausted = (
                self._supervisor is not None and self._supervisor.exhausted
            ) or (
                self._proc_pool is not None
                and self._proc_pool.supervisor.exhausted
            )
            if (
                exhausted
                or memory_pressure
                or len(self._queue) >= self.config.max_queue
            ):
                obs.counter("serve.service.rejected").inc()
                if exhausted:
                    error = "worker pool exhausted (restart budget spent)"
                elif memory_pressure:
                    error = (
                        "memory pressure: pool RSS at or above the "
                        "admission highwater"
                    )
                else:
                    error = (
                        f"queue full ({len(self._queue)} pending, "
                        f"bound {self.config.max_queue})"
                    )
                if lease is not None:
                    # Never admitted: the lease must not pin its epoch.
                    lease.release()
                future.set_result(
                    ServeResponse(
                        request_id=request_id,
                        status=REJECTED,
                        error=error,
                    )
                )
                # A shed request still burns the route's error budget
                # and lands in the failure ring — overload must be
                # visible post hoc, not just in counters.
                self.slo.observe(route, 0.0, ok=False)
                self.flight_recorder.record(
                    {
                        "trace_id": None,
                        "request_id": request_id,
                        "route": route,
                        "status": REJECTED,
                        "total_seconds": 0.0,
                        "stages": {},
                        "events": {},
                        "error": error,
                    }
                )
                return future
            now = time.monotonic()
            ctx = rtrace.RequestContext.new(
                request_id=request_id, route=route
            )
            pre_seconds = 0.0
            for stage, seconds in (pre_stages or {}).items():
                ctx.ledger.add(stage, seconds)
                pre_seconds += max(0.0, seconds)
            pending = _Pending(
                request_id=request_id,
                matrix=matrix,
                dense=dense,
                key=(
                    matrix.fingerprint(include_values=True),
                    dense.shape[1],
                    use_class_tier,
                ),
                enqueued_at=now,
                future=future,
                ctx=ctx,
                deadline=(
                    now + deadline_ms / 1000.0
                    if deadline_ms is not None
                    else None
                ),
                lease=lease,
                epoch=lease.epoch if lease is not None else None,
                use_class_tier=use_class_tier,
                pre_seconds=pre_seconds,
                poison_key=pkey,
            )
            self._queue.append(pending)
            obs.counter("serve.service.accepted").inc()
            obs.instant(
                "rtrace.submit",
                category="rtrace",
                trace_id=ctx.trace_id,
                route=route,
            )
            self._cond.notify()
        return future

    def infer(
        self,
        matrix: CSRMatrix,
        dense: np.ndarray,
        timeout: "float | None" = None,
        *,
        deadline_ms: "float | None" = None,
        route: str = "default",
    ) -> ServeResponse:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(
            matrix, dense, deadline_ms=deadline_ms, route=route
        ).result(timeout=timeout)

    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet dispatched."""
        with self._cond:
            return len(self._queue)

    # ------------------------------------------------------------------
    # Live-graph updates
    # ------------------------------------------------------------------
    def apply_updates(self, updates) -> "object":
        """Apply one edge-update batch and install the new epoch atomically.

        Returns the installed
        :class:`~repro.graphs.delta.GraphSnapshot`.  In-flight and
        queued requests keep executing against the epoch they admitted
        under (their read leases pin it); requests submitted after this
        returns admit under the new epoch.  Superseded epochs whose
        leases have drained retire before this returns — each
        registered cache drops exactly those epochs' keys.
        """
        if self.epoch_manager is None:
            raise RuntimeError(
                "apply_updates requires an epoch-managed service "
                "(pass epoch_manager= to InferenceService)"
            )
        with obs.span("serve.service.apply_updates"):
            snapshot = self.epoch_manager.apply_updates(updates)
        obs.counter("serve.service.updates_applied").inc()
        return snapshot

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def health(self, policy: "HealthPolicy | None" = None) -> HealthReport:
        """Evaluate the service's failure domains into one health state.

        See :mod:`repro.serve.health` for the severity model.  The
        snapshot embedded in the report carries the raw inputs (queue
        depth, supervisor and breaker state, deadline-miss window) for
        dashboards and run records.
        """
        policy = policy or HealthPolicy()
        with self._cond:
            depth = len(self._queue)
            closed = self._closed
            started = self._started
        supervisor_snapshot = None
        if self._supervisor is not None:
            supervisor_snapshot = self._supervisor.snapshot()
            supervisor_snapshot["recent_crashes"] = (
                self._supervisor.recent_crashes(policy.crash_recent_seconds)
            )
        breaker_states: dict = {}
        states_fn = getattr(self.dispatcher, "breaker_states", None)
        if callable(states_fn):
            breaker_states = states_fn()
        with self._miss_lock:
            window = len(self._recent_misses)
            misses = sum(self._recent_misses)
        snapshot = {
            "closed": closed,
            "started": started,
            "queue_depth": depth,
            "max_queue": self.config.max_queue,
            "supervisor": supervisor_snapshot,
            "breakers": breaker_states,
            "deadline": {
                "window": window,
                "misses": misses,
                "total_misses": self._deadline_misses,
            },
            "slo": self.slo.health_snapshot(),
        }
        if self.epoch_manager is not None:
            snapshot["epochs"] = self.epoch_manager.stats()
        if self._proc_pool is not None:
            pool_snapshot = self._proc_pool.snapshot()
            if pool_snapshot.get("isolation") == "shard":
                snapshot["shards"] = pool_snapshot
            else:
                snapshot["procpool"] = pool_snapshot
        return evaluate_health(snapshot, policy)

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _spawn_worker(self, worker_id: int) -> threading.Thread:
        return threading.Thread(
            target=self._worker_main,
            args=(worker_id,),
            name=f"serve-worker-{worker_id}",
            daemon=True,
        )

    def _worker_main(self, worker_id: int) -> None:
        """Supervision wrapper: fail the in-flight batch, report the crash."""
        try:
            self._worker_loop(worker_id)
        except Exception as exc:  # noqa: BLE001 - supervisor boundary
            batch = self._inflight.pop(worker_id, None)
            if batch:
                now = time.monotonic()
                self._fail_batch(
                    batch,
                    [now - p.enqueued_at for p in batch],
                    now,
                    f"worker crashed: {type(exc).__name__}: {exc}",
                )
            assert self._supervisor is not None
            self._supervisor.note_crash(worker_id, exc)
        else:
            assert self._supervisor is not None
            self._supervisor.note_exit(worker_id)

    def _worker_loop(self, worker_id: int) -> None:
        while True:
            batch = self._gather_batch()
            if batch is None:
                return
            self._inflight[worker_id] = batch
            self._maybe_crash()
            self._execute_batch(batch)
            self._inflight.pop(worker_id, None)

    @staticmethod
    def _maybe_crash() -> None:
        """Fault hook: an active plan may kill this worker thread."""
        plan = faults.active_plan()
        if plan is not None and plan.should_crash_worker():
            raise faults.ExecutionFaultError("injected worker-thread crash")

    def _gather_batch(self) -> "list[_Pending] | None":
        """Collect one fingerprint-homogeneous batch (or ``None`` to exit).

        Requests already past their deadline are shed with a
        :data:`DEADLINE_EXCEEDED` response the moment they surface,
        before any execution cost is paid.  Otherwise takes the oldest
        queued request as the batch head, then keeps pulling same-key
        requests until the batch is full or the head has waited
        ``max_wait_ms``; the condition variable is released while
        waiting so other workers keep draining other keys.
        """
        max_wait = self.config.max_wait_ms / 1000.0
        with self._cond:
            while True:
                while not self._queue:
                    if self._closed:
                        return None
                    self._cond.wait(timeout=0.1)
                head = self._queue.popleft()
                if (
                    head.deadline is not None
                    and time.monotonic() >= head.deadline
                ):
                    self._shed_expired(head)
                    continue
                break
            head.picked_at = time.monotonic()
            batch = [head]
            deadline = head.enqueued_at + max_wait
            while len(batch) < self.config.max_batch:
                self._take_matching(batch)
                if len(batch) >= self.config.max_batch:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    break
                self._cond.wait(timeout=min(remaining, 0.01))
            return batch

    def _take_matching(self, batch: "list[_Pending]") -> None:
        """Move queued requests with the batch head's key into ``batch``."""
        key = batch[0].key
        kept: "deque[_Pending]" = deque()
        while self._queue:
            pending = self._queue.popleft()
            if pending.key == key and len(batch) < self.config.max_batch:
                pending.picked_at = time.monotonic()
                batch.append(pending)
            else:
                kept.append(pending)
        self._queue.extend(kept)

    def _shed_expired(self, pending: _Pending, now: "float | None" = None) -> None:
        """Resolve one expired request with ``DEADLINE_EXCEEDED``, unexecuted."""
        now = time.monotonic() if now is None else now
        obs.counter("serve.service.deadline_shed").inc()
        self._record_miss(True)
        waited = now - pending.enqueued_at
        pending.ctx.ledger.add("queue", waited)
        self._finalize(pending, DEADLINE_EXCEEDED)
        pending.future.set_result(
            ServeResponse(
                request_id=pending.request_id,
                status=DEADLINE_EXCEEDED,
                queue_seconds=waited,
                error=(
                    "deadline exceeded before execution "
                    f"(waited {waited * 1e3:.1f} ms)"
                ),
                trace_id=pending.ctx.trace_id,
                attribution=pending.ctx.ledger.to_dict(),
                epoch=pending.epoch,
            )
        )

    def _settle_ledger(
        self, pending: _Pending, now: float
    ) -> "tuple[float, dict]":
        """Reconcile a request's ledger with its end-to-end latency.

        Requests that never reached execution (abandoned queue, worker
        crash before attribution) get their wait charged to ``queue``;
        everything unattributed lands in ``other`` so the stage sum
        always equals the end-to-end total.  Returns
        ``(total_seconds, ledger_dict)``.
        """
        total = max(0.0, now - pending.enqueued_at)
        ledger = pending.ctx.ledger
        if "queue" not in ledger.stages():
            ledger.add("queue", total)
        # pre_seconds (the pre-admission "sample" stage) rides on top of
        # the admission-to-reply total, so the stage sum reconciles with
        # the request's full end-to-end time.
        ledger.add(
            "other", max(0.0, total + pending.pre_seconds - ledger.total())
        )
        return total, ledger.to_dict()

    def _finalize(
        self, pending: _Pending, status: str, **extra
    ) -> None:
        """Feed a finished request into the SLO tracker + flight recorder.

        Every terminal path passes through here, so this is also where
        the request's epoch lease drains — after this, a superseded
        epoch with no other readers retires and its cache keys drop.
        """
        if pending.lease is not None:
            pending.lease.release()
        self.slo.observe(
            pending.ctx.route, pending.ctx.ledger.total(), ok=(status == OK)
        )
        self.flight_recorder.record(
            pending.ctx.summary(status=status, **extra)
        )

    def _record_miss(self, missed: bool) -> None:
        with self._miss_lock:
            self._recent_misses.append(missed)
            if missed:
                self._deadline_misses += 1

    def _batch_timeout(
        self, batch: "list[_Pending]", started: float
    ) -> "float | None":
        """The batch budget: ``request_timeout`` ∧ min remaining deadline."""
        budgets = []
        if self.config.request_timeout is not None:
            budgets.append(self.config.request_timeout)
        for pending in batch:
            if pending.deadline is not None:
                budgets.append(pending.deadline - started)
        return min(budgets) if budgets else None

    def _execute_batch(self, batch: "list[_Pending]") -> None:
        started = time.monotonic()
        # Final deadline sweep: members may have expired while the batch
        # was forming.  Nothing expired ever reaches a backend.
        live = []
        for pending in batch:
            if pending.deadline is not None and started >= pending.deadline:
                self._shed_expired(pending, started)
            else:
                live.append(pending)
        if not live:
            return
        batch = live
        matrix = batch[0].matrix
        queue_waits = [started - p.enqueued_at for p in batch]
        # Split each member's wait into queue time (admission -> pulled
        # into the forming batch) and batch-formation time (pulled ->
        # execution start); together they equal queue_seconds.
        contexts = []
        for pending in batch:
            picked = pending.picked_at or started
            pending.ctx.ledger.add(
                "queue", max(0.0, picked - pending.enqueued_at)
            )
            pending.ctx.ledger.add("batch_form", max(0.0, started - picked))
            contexts.append(pending.ctx)
        # The batching key includes the feature width, so every member
        # shares one width and the stacked result splits evenly.
        width = batch[0].dense.shape[1]
        stacked = (
            np.hstack([p.dense for p in batch])
            if len(batch) > 1
            else batch[0].dense
        )
        obs.counter("serve.service.batches").inc()
        obs.histogram("serve.service.batch_size").observe(float(len(batch)))
        if self._proc_pool is not None:
            self._execute_batch_proc(
                batch, queue_waits, started, contexts, matrix, stacked, width
            )
            return

        def dispatch_batch():
            # Activation happens *inside* the callable: call_with_timeout
            # may run it on a separate timeout-pool thread, and request
            # contexts propagate explicitly, never via thread inheritance.
            with rtrace.activate(*contexts):
                return self.dispatcher.execute(
                    matrix,
                    stacked,
                    # Key plans/bandit arms by the per-request width so
                    # batch size never fragments the plan cache.
                    plan_dim=width,
                    verify=self.config.verify,
                    # Homogeneous per batch: the flag is part of the
                    # batching key.
                    prefer_class_tier=batch[0].use_class_tier,
                )

        try:
            with obs.span(
                "serve.service.batch",
                batch_size=len(batch),
                nnz=matrix.nnz,
                dim=int(stacked.shape[1]),
                trace_ids=",".join(c.trace_id for c in contexts),
            ):
                result = call_with_timeout(
                    dispatch_batch, self._batch_timeout(batch, started)
                )
        except ExperimentTimeoutError as exc:
            self._fail_timed_out_batch(batch, queue_waits, started, exc)
            return
        except Exception as exc:  # dispatcher already absorbed backend faults
            self._fail_batch(
                batch, queue_waits, started, f"{type(exc).__name__}: {exc}"
            )
            return
        self._complete_batch(batch, queue_waits, started, result, width)

    def _execute_batch_proc(
        self,
        batch: "list[_Pending]",
        queue_waits: "list[float]",
        started: float,
        contexts: list,
        matrix: CSRMatrix,
        stacked: np.ndarray,
        width: int,
    ) -> None:
        """Run one batch on the process-isolation executor.

        The executor is a :class:`ProcessWorkerPool` or a
        :class:`~repro.shard.router.ShardRouter` (same protocol; the
        router adds scatter/halo stages and per-shard crash replay).
        The pool's reaper enforces the batch budget by SIGKILLing a
        hung worker — no ``call_with_timeout`` thread-abandonment here —
        and failures map to terminal statuses: crash/hang/RSS kill ->
        :data:`WORKER_CRASHED` (or :data:`DEADLINE_EXCEEDED` for
        members already past their deadline), quarantined content ->
        :data:`QUARANTINED`, transport errors -> :data:`ERROR`.  With
        ``config.verify`` the oracle cross-check runs here in the
        parent, outside the worker's failure domain.
        """
        keys = tuple(p.poison_key for p in batch if p.poison_key is not None)

        def run_on_pool():
            with rtrace.activate(*contexts):
                result = self._proc_pool.execute(
                    matrix,
                    stacked,
                    keys=keys,
                    timeout=self._batch_timeout(batch, started),
                )
                if self.config.verify:
                    with rtrace.stage("verify"):
                        check_output(matrix, stacked, result.output)
                return result

        try:
            with obs.span(
                "serve.service.batch",
                batch_size=len(batch),
                nnz=matrix.nnz,
                dim=int(stacked.shape[1]),
                isolation=self._pool_isolation,
                trace_ids=",".join(c.trace_id for c in contexts),
            ):
                result = run_on_pool()
        except QuarantinedError as exc:
            obs.counter("serve.service.quarantined").inc(len(batch))
            self._fail_batch(
                batch, queue_waits, started, str(exc), status=QUARANTINED
            )
            return
        except WorkerCrashError as exc:
            self._fail_crashed_batch(batch, queue_waits, started, exc)
            return
        except PoolError as exc:
            self._fail_batch(batch, queue_waits, started, str(exc))
            return
        except Exception as exc:  # noqa: BLE001 - e.g. oracle failure
            self._fail_batch(
                batch, queue_waits, started, f"{type(exc).__name__}: {exc}"
            )
            return
        self._complete_batch(batch, queue_waits, started, result, width)

    def _fail_crashed_batch(
        self,
        batch: "list[_Pending]",
        queue_waits: "list[float]",
        started: float,
        exc: WorkerCrashError,
    ) -> None:
        """Terminal per-member classification after a worker death.

        Members already past their deadline answer
        :data:`DEADLINE_EXCEEDED` (a hung worker reaped at the batch
        budget *is* their deadline firing); everyone else answers the
        terminal :data:`WORKER_CRASHED`.
        """
        now = time.monotonic()
        for pending, wait in zip(batch, queue_waits):
            if pending.deadline is not None and now >= pending.deadline:
                status = DEADLINE_EXCEEDED
                error = f"deadline exceeded during execution: {exc}"
                obs.counter("serve.service.deadline_cutoff").inc()
                self._record_miss(True)
            else:
                status = WORKER_CRASHED
                error = str(exc)
                obs.counter("serve.service.worker_crashed").inc()
                self._record_miss(False)
            total, attribution = self._settle_ledger(pending, now)
            self._finalize(pending, status, error=error)
            pending.future.set_result(
                ServeResponse(
                    request_id=pending.request_id,
                    status=status,
                    batch_size=len(batch),
                    queue_seconds=wait,
                    service_seconds=max(0.0, total - wait),
                    error=error,
                    trace_id=pending.ctx.trace_id,
                    attribution=attribution,
                    epoch=pending.epoch,
                )
            )

    def _complete_batch(
        self,
        batch: "list[_Pending]",
        queue_waits: "list[float]",
        started: float,
        result,
        width: int,
    ) -> None:
        obs.histogram("serve.service.latency_seconds").observe(
            time.monotonic() - started
        )
        for i, (pending, wait) in enumerate(zip(batch, queue_waits)):
            with rtrace.activate(pending.ctx):
                with rtrace.stage("scatter"):
                    if len(batch) == 1:
                        # The whole result belongs to this request — no copy.
                        output = result.output
                    else:
                        # Copy the slice: a view into the stacked batch
                        # result would let one client's mutation corrupt
                        # another's reply and pin the full batch array
                        # for every response.
                        output = result.output[
                            :, i * width : (i + 1) * width
                        ].copy()
            obs.counter("serve.service.completed").inc()
            self._record_miss(False)
            # Stamp the residual (timeout-pool hand-off, loop overhead)
            # so the ledger's stage sum reconciles exactly with the
            # request's end-to-end latency.
            total = time.monotonic() - pending.enqueued_at
            ledger = pending.ctx.ledger
            ledger.add(
                "other",
                max(0.0, total + pending.pre_seconds - ledger.total()),
            )
            self._finalize(
                pending, OK,
                backend=result.backend,
                fallback_used=result.fallback_used,
                batch_size=len(batch),
            )
            pending.future.set_result(
                ServeResponse(
                    request_id=pending.request_id,
                    status=OK,
                    output=output,
                    backend=result.backend,
                    fallback_used=result.fallback_used,
                    batch_size=len(batch),
                    queue_seconds=wait,
                    service_seconds=max(0.0, total - wait),
                    trace_id=pending.ctx.trace_id,
                    attribution=ledger.to_dict(),
                    epoch=pending.epoch,
                )
            )

    def _fail_timed_out_batch(
        self,
        batch: "list[_Pending]",
        queue_waits: "list[float]",
        started: float,
        exc: ExperimentTimeoutError,
    ) -> None:
        """Classify a timed-out batch: deadline members vs. budget members."""
        now = time.monotonic()
        for pending, wait in zip(batch, queue_waits):
            if pending.deadline is not None and now >= pending.deadline:
                status = DEADLINE_EXCEEDED
                error = f"deadline exceeded during execution: {exc}"
                obs.counter("serve.service.deadline_cutoff").inc()
                self._record_miss(True)
            else:
                status = ERROR
                error = f"timeout: {exc}"
                obs.counter("serve.service.errors").inc()
                self._record_miss(False)
            total, attribution = self._settle_ledger(pending, now)
            self._finalize(pending, status, error=error)
            pending.future.set_result(
                ServeResponse(
                    request_id=pending.request_id,
                    status=status,
                    batch_size=len(batch),
                    queue_seconds=wait,
                    service_seconds=max(0.0, total - wait),
                    error=error,
                    trace_id=pending.ctx.trace_id,
                    attribution=attribution,
                    epoch=pending.epoch,
                )
            )

    def _fail_batch(
        self,
        batch: "list[_Pending]",
        queue_waits: "list[float]",
        started: float,
        error: str,
        status: str = ERROR,
    ) -> None:
        now = time.monotonic()
        if status == ERROR:
            obs.counter("serve.service.errors").inc(len(batch))
        for pending, wait in zip(batch, queue_waits):
            self._record_miss(False)
            total, attribution = self._settle_ledger(pending, now)
            self._finalize(pending, status, error=error)
            pending.future.set_result(
                ServeResponse(
                    request_id=pending.request_id,
                    status=status,
                    batch_size=len(batch),
                    queue_seconds=wait,
                    service_seconds=max(0.0, total - wait),
                    error=error,
                    trace_id=pending.ctx.trace_id,
                    attribution=attribution,
                    epoch=pending.epoch,
                )
            )

    def _on_pool_exhausted(self) -> None:
        """Supervisor callback: the restart budget is spent."""
        obs.counter("serve.service.pool_exhausted").inc()
        self._abandon_queue("worker pool exhausted (restart budget spent)")

    def _abandon_queue(self, error: str) -> None:
        """Fail everything still queued; bounded failure, never a hang."""
        with self._cond:
            abandoned = list(self._queue)
            self._queue.clear()
        if not abandoned:
            return
        now = time.monotonic()
        self._fail_batch(
            abandoned, [now - p.enqueued_at for p in abandoned], now, error
        )
