"""The inference service: bounded queue, micro-batching, load shedding.

:class:`InferenceService` is the request path the ROADMAP's serving story
needs on top of the one-shot experiment harness:

* **Bounded admission.**  ``submit`` enqueues into a bounded queue; when
  it is full the request is *rejected immediately* with a ``503``-style
  :data:`REJECTED` response instead of growing memory without bound.
* **Dynamic micro-batching.**  Worker threads group queued requests by
  the full content fingerprint of their adjacency matrix *and* their
  feature width, and flush a batch when it reaches ``max_batch`` or the
  oldest member has waited ``max_wait_ms``.  A batch executes as *one*
  SpMM — the dense operands are concatenated column-wise
  (``A @ [X1 | X2 | ...]``), which is exactly how GNN serving amortizes
  aggregation across users of the same graph — then split back per
  request (each reply owns its output; nothing aliases the shared batch
  result).
* **Adaptive dispatch.**  Each batch runs through an
  :class:`~repro.serve.dispatch.AdaptiveDispatcher`, so backend choice
  improves as traffic flows, and any oracle failure degrades to the
  verified fallback rather than returning a corrupt product.
* **Deadlines.**  ``submit(deadline_ms=...)`` stamps a request with a
  wall-clock budget.  Requests already past their deadline are *shed
  before execution* with a :data:`DEADLINE_EXCEEDED` response, and a
  batch runs under the minimum remaining deadline of its members
  (combined with the per-batch ``request_timeout``) via
  :func:`repro.resilience.runtime.call_with_timeout`.
* **Worker supervision.**  A
  :class:`~repro.serve.guard.WorkerSupervisor` owns the worker pool: a
  worker that dies of an uncaught exception has its in-flight batch
  failed cleanly (never hung) and is respawned up to a restart budget;
  past the budget the pool is *exhausted*, queued work is failed, and
  new submissions are rejected.
* **Health.**  :meth:`InferenceService.health` reports
  ``HEALTHY / DEGRADED / UNHEALTHY`` with machine-readable causes (open
  breakers, recent crashes, queue saturation, deadline-miss rate); see
  :mod:`repro.serve.health`.

Every stage emits ``repro.obs`` counters and spans (``serve.service.*``).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.formats import CSRMatrix
from repro.resilience import faults
from repro.resilience.runtime import ExperimentTimeoutError, call_with_timeout
from repro.serve.dispatch import AdaptiveDispatcher
from repro.serve.guard import WorkerSupervisor
from repro.serve.health import HealthPolicy, HealthReport, evaluate_health
from repro.serve.plancache import PlanCache

OK = "ok"
REJECTED = "rejected"
ERROR = "error"
DEADLINE_EXCEEDED = "deadline_exceeded"

# Sliding window of recent request outcomes backing the health surface's
# deadline-miss rate.
_MISS_WINDOW = 256


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one :class:`InferenceService`.

    Attributes:
        max_queue: Admission bound; requests beyond it are shed.
        max_batch: Micro-batch flush size.
        max_wait_ms: Micro-batch flush deadline, measured from the oldest
            batched request's enqueue time.
        n_workers: Batch-executing worker threads.
        request_timeout: Per-batch wall-clock budget in seconds
            (``None`` disables; see :mod:`repro.resilience.runtime`).
            Request deadlines tighten this further per batch.
        restart_budget: Total worker respawns the supervisor allows over
            the service's lifetime before declaring the pool exhausted.
        verify: Cross-check every batch output against the independent
            reference before replying (failures degrade to the verified
            fallback inside the dispatcher).
    """

    max_queue: int = 64
    max_batch: int = 8
    max_wait_ms: float = 2.0
    n_workers: int = 2
    request_timeout: "float | None" = None
    restart_budget: int = 3
    verify: bool = False

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.restart_budget < 0:
            raise ValueError(
                f"restart_budget must be >= 0, got {self.restart_budget}"
            )


@dataclass(frozen=True)
class ServeResponse:
    """Reply to one inference request.

    Attributes:
        request_id: Monotonic id assigned at submission.
        status: ``"ok"``, ``"rejected"`` (load shed at admission),
            ``"deadline_exceeded"`` (shed or cut off past its deadline),
            or ``"error"`` (batch timeout, worker crash, or unexpected
            executor failure).
        output: The product for this request's operand (``None`` unless
            ``ok``).
        backend: Dispatcher backend that served the batch.
        fallback_used: Whether the verified fallback produced the output.
        batch_size: Number of requests that shared the execution.
        queue_seconds: Admission-to-execution wait.
        service_seconds: Batch execution wall time.
        error: Failure description for non-``ok`` statuses.
    """

    request_id: int
    status: str
    output: "np.ndarray | None" = field(default=None, repr=False)
    backend: "str | None" = None
    fallback_used: bool = False
    batch_size: int = 0
    queue_seconds: float = 0.0
    service_seconds: float = 0.0
    error: "str | None" = None

    @property
    def ok(self) -> bool:
        return self.status == OK

    @property
    def rejected(self) -> bool:
        return self.status == REJECTED

    @property
    def deadline_exceeded(self) -> bool:
        return self.status == DEADLINE_EXCEEDED


@dataclass
class _Pending:
    request_id: int
    matrix: CSRMatrix
    dense: np.ndarray
    # (full content fingerprint, feature width): only requests that share
    # both the matrix values and the dense width may batch together.
    key: "tuple[str, int]"
    enqueued_at: float
    future: "Future[ServeResponse]"
    # Absolute monotonic deadline; None = no deadline.
    deadline: "float | None" = None


class InferenceService:
    """A multi-worker, micro-batching GNN aggregation service.

    Args:
        dispatcher: Backend dispatcher; a default
            :class:`AdaptiveDispatcher` is built when omitted.
        config: Queueing/batching tunables.
        plan_cache: Plan cache handed to a default dispatcher.

    Use as a context manager (``with InferenceService() as svc``) or call
    :meth:`start`/:meth:`close` explicitly.
    """

    def __init__(
        self,
        dispatcher: "AdaptiveDispatcher | None" = None,
        config: "ServeConfig | None" = None,
        *,
        plan_cache: "PlanCache | None" = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.dispatcher = dispatcher or AdaptiveDispatcher(
            plan_cache=plan_cache
        )
        self._cond = threading.Condition()
        self._queue: "deque[_Pending]" = deque()
        self._closed = False
        self._started = False
        self._ids = itertools.count()
        self._supervisor: "WorkerSupervisor | None" = None
        # Per-worker in-flight batch; each slot is touched only by its
        # owning worker thread (and its crash handler, same thread).
        self._inflight: "dict[int, list[_Pending]]" = {}
        self._miss_lock = threading.Lock()
        self._recent_misses: "deque[bool]" = deque(maxlen=_MISS_WINDOW)
        self._deadline_misses = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InferenceService":
        """Spawn the supervised worker pool (idempotent)."""
        with self._cond:
            if self._closed:
                raise RuntimeError("service is closed")
            if self._started:
                return self
            self._started = True
        self._supervisor = WorkerSupervisor(
            self._spawn_worker,
            self.config.n_workers,
            restart_budget=self.config.restart_budget,
            on_exhausted=self._on_pool_exhausted,
        )
        self._supervisor.start()
        return self

    def close(self) -> None:
        """Stop accepting requests, drain the queue, join the workers."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        if self._supervisor is not None:
            self._supervisor.join()
        # If the pool died mid-drain (budget exhausted), whatever is
        # still queued must fail, never hang.
        self._abandon_queue("service closed with no live workers")

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(
        self,
        matrix: CSRMatrix,
        dense: np.ndarray,
        *,
        deadline_ms: "float | None" = None,
    ) -> "Future[ServeResponse]":
        """Enqueue one aggregation request ``matrix @ dense``.

        Args:
            matrix: Sparse adjacency operand.
            dense: Dense feature operand.
            deadline_ms: Wall-clock budget for the whole request
                (queueing + execution).  A request still queued past its
                deadline is shed with a :data:`DEADLINE_EXCEEDED`
                response *before* execution, and batch execution is cut
                off at the batch's minimum remaining deadline.

        Returns a future that resolves to a :class:`ServeResponse`.  When
        the bounded queue is full (or the worker pool is exhausted) the
        future resolves *immediately* with a ``rejected`` response —
        explicit load shedding, never unbounded growth.
        """
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError(
                f"dense operand must be 2-D, got shape {dense.shape}"
            )
        if dense.shape[0] != matrix.n_cols:
            raise ValueError(
                f"dimension mismatch: {matrix.shape} @ {dense.shape}"
            )
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be positive, got {deadline_ms}"
            )
        future: "Future[ServeResponse]" = Future()
        with self._cond:
            # Admission checks come before any id/metric allocation so
            # the submitted counter only ever counts requests that were
            # actually admitted or explicitly shed.
            if self._closed:
                raise RuntimeError("service is closed")
            if not self._started:
                raise RuntimeError("service is not started")
            request_id = next(self._ids)
            obs.counter("serve.service.submitted").inc()
            exhausted = (
                self._supervisor is not None and self._supervisor.exhausted
            )
            if exhausted or len(self._queue) >= self.config.max_queue:
                obs.counter("serve.service.rejected").inc()
                error = (
                    "worker pool exhausted (restart budget spent)"
                    if exhausted
                    else (
                        f"queue full ({len(self._queue)} pending, "
                        f"bound {self.config.max_queue})"
                    )
                )
                future.set_result(
                    ServeResponse(
                        request_id=request_id,
                        status=REJECTED,
                        error=error,
                    )
                )
                return future
            now = time.monotonic()
            pending = _Pending(
                request_id=request_id,
                matrix=matrix,
                dense=dense,
                key=(matrix.fingerprint(include_values=True), dense.shape[1]),
                enqueued_at=now,
                future=future,
                deadline=(
                    now + deadline_ms / 1000.0
                    if deadline_ms is not None
                    else None
                ),
            )
            self._queue.append(pending)
            obs.counter("serve.service.accepted").inc()
            self._cond.notify()
        return future

    def infer(
        self,
        matrix: CSRMatrix,
        dense: np.ndarray,
        timeout: "float | None" = None,
        *,
        deadline_ms: "float | None" = None,
    ) -> ServeResponse:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(matrix, dense, deadline_ms=deadline_ms).result(
            timeout=timeout
        )

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def health(self, policy: "HealthPolicy | None" = None) -> HealthReport:
        """Evaluate the service's failure domains into one health state.

        See :mod:`repro.serve.health` for the severity model.  The
        snapshot embedded in the report carries the raw inputs (queue
        depth, supervisor and breaker state, deadline-miss window) for
        dashboards and run records.
        """
        policy = policy or HealthPolicy()
        with self._cond:
            depth = len(self._queue)
            closed = self._closed
            started = self._started
        supervisor_snapshot = None
        if self._supervisor is not None:
            supervisor_snapshot = self._supervisor.snapshot()
            supervisor_snapshot["recent_crashes"] = (
                self._supervisor.recent_crashes(policy.crash_recent_seconds)
            )
        breaker_states: dict = {}
        states_fn = getattr(self.dispatcher, "breaker_states", None)
        if callable(states_fn):
            breaker_states = states_fn()
        with self._miss_lock:
            window = len(self._recent_misses)
            misses = sum(self._recent_misses)
        snapshot = {
            "closed": closed,
            "started": started,
            "queue_depth": depth,
            "max_queue": self.config.max_queue,
            "supervisor": supervisor_snapshot,
            "breakers": breaker_states,
            "deadline": {
                "window": window,
                "misses": misses,
                "total_misses": self._deadline_misses,
            },
        }
        return evaluate_health(snapshot, policy)

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _spawn_worker(self, worker_id: int) -> threading.Thread:
        return threading.Thread(
            target=self._worker_main,
            args=(worker_id,),
            name=f"serve-worker-{worker_id}",
            daemon=True,
        )

    def _worker_main(self, worker_id: int) -> None:
        """Supervision wrapper: fail the in-flight batch, report the crash."""
        try:
            self._worker_loop(worker_id)
        except Exception as exc:  # noqa: BLE001 - supervisor boundary
            batch = self._inflight.pop(worker_id, None)
            if batch:
                now = time.monotonic()
                self._fail_batch(
                    batch,
                    [now - p.enqueued_at for p in batch],
                    now,
                    f"worker crashed: {type(exc).__name__}: {exc}",
                )
            assert self._supervisor is not None
            self._supervisor.note_crash(worker_id, exc)
        else:
            assert self._supervisor is not None
            self._supervisor.note_exit(worker_id)

    def _worker_loop(self, worker_id: int) -> None:
        while True:
            batch = self._gather_batch()
            if batch is None:
                return
            self._inflight[worker_id] = batch
            self._maybe_crash()
            self._execute_batch(batch)
            self._inflight.pop(worker_id, None)

    @staticmethod
    def _maybe_crash() -> None:
        """Fault hook: an active plan may kill this worker thread."""
        plan = faults.active_plan()
        if plan is not None and plan.should_crash_worker():
            raise faults.ExecutionFaultError("injected worker-thread crash")

    def _gather_batch(self) -> "list[_Pending] | None":
        """Collect one fingerprint-homogeneous batch (or ``None`` to exit).

        Requests already past their deadline are shed with a
        :data:`DEADLINE_EXCEEDED` response the moment they surface,
        before any execution cost is paid.  Otherwise takes the oldest
        queued request as the batch head, then keeps pulling same-key
        requests until the batch is full or the head has waited
        ``max_wait_ms``; the condition variable is released while
        waiting so other workers keep draining other keys.
        """
        max_wait = self.config.max_wait_ms / 1000.0
        with self._cond:
            while True:
                while not self._queue:
                    if self._closed:
                        return None
                    self._cond.wait(timeout=0.1)
                head = self._queue.popleft()
                if (
                    head.deadline is not None
                    and time.monotonic() >= head.deadline
                ):
                    self._shed_expired(head)
                    continue
                break
            batch = [head]
            deadline = head.enqueued_at + max_wait
            while len(batch) < self.config.max_batch:
                self._take_matching(batch)
                if len(batch) >= self.config.max_batch:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    break
                self._cond.wait(timeout=min(remaining, 0.01))
            return batch

    def _take_matching(self, batch: "list[_Pending]") -> None:
        """Move queued requests with the batch head's key into ``batch``."""
        key = batch[0].key
        kept: "deque[_Pending]" = deque()
        while self._queue:
            pending = self._queue.popleft()
            if pending.key == key and len(batch) < self.config.max_batch:
                batch.append(pending)
            else:
                kept.append(pending)
        self._queue.extend(kept)

    def _shed_expired(self, pending: _Pending, now: "float | None" = None) -> None:
        """Resolve one expired request with ``DEADLINE_EXCEEDED``, unexecuted."""
        now = time.monotonic() if now is None else now
        obs.counter("serve.service.deadline_shed").inc()
        self._record_miss(True)
        pending.future.set_result(
            ServeResponse(
                request_id=pending.request_id,
                status=DEADLINE_EXCEEDED,
                queue_seconds=now - pending.enqueued_at,
                error=(
                    "deadline exceeded before execution "
                    f"(waited {(now - pending.enqueued_at) * 1e3:.1f} ms)"
                ),
            )
        )

    def _record_miss(self, missed: bool) -> None:
        with self._miss_lock:
            self._recent_misses.append(missed)
            if missed:
                self._deadline_misses += 1

    def _batch_timeout(
        self, batch: "list[_Pending]", started: float
    ) -> "float | None":
        """The batch budget: ``request_timeout`` ∧ min remaining deadline."""
        budgets = []
        if self.config.request_timeout is not None:
            budgets.append(self.config.request_timeout)
        for pending in batch:
            if pending.deadline is not None:
                budgets.append(pending.deadline - started)
        return min(budgets) if budgets else None

    def _execute_batch(self, batch: "list[_Pending]") -> None:
        started = time.monotonic()
        # Final deadline sweep: members may have expired while the batch
        # was forming.  Nothing expired ever reaches a backend.
        live = []
        for pending in batch:
            if pending.deadline is not None and started >= pending.deadline:
                self._shed_expired(pending, started)
            else:
                live.append(pending)
        if not live:
            return
        batch = live
        matrix = batch[0].matrix
        queue_waits = [started - p.enqueued_at for p in batch]
        # The batching key includes the feature width, so every member
        # shares one width and the stacked result splits evenly.
        width = batch[0].dense.shape[1]
        stacked = (
            np.hstack([p.dense for p in batch])
            if len(batch) > 1
            else batch[0].dense
        )
        obs.counter("serve.service.batches").inc()
        obs.histogram("serve.service.batch_size").observe(float(len(batch)))
        try:
            with obs.span(
                "serve.service.batch",
                batch_size=len(batch),
                nnz=matrix.nnz,
                dim=int(stacked.shape[1]),
            ):
                result = call_with_timeout(
                    lambda: self.dispatcher.execute(
                        matrix,
                        stacked,
                        # Key plans/bandit arms by the per-request width so
                        # batch size never fragments the plan cache.
                        plan_dim=width,
                        verify=self.config.verify,
                    ),
                    self._batch_timeout(batch, started),
                )
        except ExperimentTimeoutError as exc:
            self._fail_timed_out_batch(batch, queue_waits, started, exc)
            return
        except Exception as exc:  # dispatcher already absorbed backend faults
            self._fail_batch(
                batch, queue_waits, started, f"{type(exc).__name__}: {exc}"
            )
            return
        service_seconds = time.monotonic() - started
        obs.histogram("serve.service.latency_seconds").observe(service_seconds)
        for i, (pending, wait) in enumerate(zip(batch, queue_waits)):
            if len(batch) == 1:
                # The whole result belongs to this request — no copy.
                output = result.output
            else:
                # Copy the slice: a view into the stacked batch result
                # would let one client's mutation corrupt another's reply
                # and pin the full batch array for every response.
                output = result.output[:, i * width : (i + 1) * width].copy()
            obs.counter("serve.service.completed").inc()
            self._record_miss(False)
            pending.future.set_result(
                ServeResponse(
                    request_id=pending.request_id,
                    status=OK,
                    output=output,
                    backend=result.backend,
                    fallback_used=result.fallback_used,
                    batch_size=len(batch),
                    queue_seconds=wait,
                    service_seconds=service_seconds,
                )
            )

    def _fail_timed_out_batch(
        self,
        batch: "list[_Pending]",
        queue_waits: "list[float]",
        started: float,
        exc: ExperimentTimeoutError,
    ) -> None:
        """Classify a timed-out batch: deadline members vs. budget members."""
        now = time.monotonic()
        service_seconds = now - started
        for pending, wait in zip(batch, queue_waits):
            if pending.deadline is not None and now >= pending.deadline:
                obs.counter("serve.service.deadline_cutoff").inc()
                self._record_miss(True)
                pending.future.set_result(
                    ServeResponse(
                        request_id=pending.request_id,
                        status=DEADLINE_EXCEEDED,
                        batch_size=len(batch),
                        queue_seconds=wait,
                        service_seconds=service_seconds,
                        error=f"deadline exceeded during execution: {exc}",
                    )
                )
            else:
                obs.counter("serve.service.errors").inc()
                self._record_miss(False)
                pending.future.set_result(
                    ServeResponse(
                        request_id=pending.request_id,
                        status=ERROR,
                        batch_size=len(batch),
                        queue_seconds=wait,
                        service_seconds=service_seconds,
                        error=f"timeout: {exc}",
                    )
                )

    def _fail_batch(
        self,
        batch: "list[_Pending]",
        queue_waits: "list[float]",
        started: float,
        error: str,
    ) -> None:
        service_seconds = time.monotonic() - started
        obs.counter("serve.service.errors").inc(len(batch))
        for pending, wait in zip(batch, queue_waits):
            self._record_miss(False)
            pending.future.set_result(
                ServeResponse(
                    request_id=pending.request_id,
                    status=ERROR,
                    batch_size=len(batch),
                    queue_seconds=wait,
                    service_seconds=service_seconds,
                    error=error,
                )
            )

    def _on_pool_exhausted(self) -> None:
        """Supervisor callback: the restart budget is spent."""
        obs.counter("serve.service.pool_exhausted").inc()
        self._abandon_queue("worker pool exhausted (restart budget spent)")

    def _abandon_queue(self, error: str) -> None:
        """Fail everything still queued; bounded failure, never a hang."""
        with self._cond:
            abandoned = list(self._queue)
            self._queue.clear()
        if not abandoned:
            return
        now = time.monotonic()
        self._fail_batch(
            abandoned, [now - p.enqueued_at for p in abandoned], now, error
        )
