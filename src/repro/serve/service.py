"""The inference service: bounded queue, micro-batching, load shedding.

:class:`InferenceService` is the request path the ROADMAP's serving story
needs on top of the one-shot experiment harness:

* **Bounded admission.**  ``submit`` enqueues into a bounded queue; when
  it is full the request is *rejected immediately* with a ``503``-style
  :data:`REJECTED` response instead of growing memory without bound.
* **Dynamic micro-batching.**  Worker threads group queued requests by
  the full content fingerprint of their adjacency matrix *and* their
  feature width, and flush a batch when it reaches ``max_batch`` or the
  oldest member has waited ``max_wait_ms``.  A batch executes as *one*
  SpMM — the dense operands are concatenated column-wise
  (``A @ [X1 | X2 | ...]``), which is exactly how GNN serving amortizes
  aggregation across users of the same graph — then split back per
  request (each reply owns its output; nothing aliases the shared batch
  result).
* **Adaptive dispatch.**  Each batch runs through an
  :class:`~repro.serve.dispatch.AdaptiveDispatcher`, so backend choice
  improves as traffic flows, and any oracle failure degrades to the
  verified fallback rather than returning a corrupt product.
* **Timeouts.**  A per-batch wall-clock budget is enforced with
  :func:`repro.resilience.runtime.call_with_timeout`.

Every stage emits ``repro.obs`` counters and spans (``serve.service.*``).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.formats import CSRMatrix
from repro.resilience.runtime import ExperimentTimeoutError, call_with_timeout
from repro.serve.dispatch import AdaptiveDispatcher
from repro.serve.plancache import PlanCache

OK = "ok"
REJECTED = "rejected"
ERROR = "error"


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one :class:`InferenceService`.

    Attributes:
        max_queue: Admission bound; requests beyond it are shed.
        max_batch: Micro-batch flush size.
        max_wait_ms: Micro-batch flush deadline, measured from the oldest
            batched request's enqueue time.
        n_workers: Batch-executing worker threads.
        request_timeout: Per-batch wall-clock budget in seconds
            (``None`` disables; see :mod:`repro.resilience.runtime`).
        verify: Cross-check every batch output against the independent
            reference before replying (failures degrade to the verified
            fallback inside the dispatcher).
    """

    max_queue: int = 64
    max_batch: int = 8
    max_wait_ms: float = 2.0
    n_workers: int = 2
    request_timeout: "float | None" = None
    verify: bool = False

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")


@dataclass(frozen=True)
class ServeResponse:
    """Reply to one inference request.

    Attributes:
        request_id: Monotonic id assigned at submission.
        status: ``"ok"``, ``"rejected"`` (load shed at admission), or
            ``"error"`` (batch timeout or unexpected executor failure).
        output: The product for this request's operand (``None`` unless
            ``ok``).
        backend: Dispatcher backend that served the batch.
        fallback_used: Whether the verified fallback produced the output.
        batch_size: Number of requests that shared the execution.
        queue_seconds: Admission-to-execution wait.
        service_seconds: Batch execution wall time.
        error: Failure description for non-``ok`` statuses.
    """

    request_id: int
    status: str
    output: "np.ndarray | None" = field(default=None, repr=False)
    backend: "str | None" = None
    fallback_used: bool = False
    batch_size: int = 0
    queue_seconds: float = 0.0
    service_seconds: float = 0.0
    error: "str | None" = None

    @property
    def ok(self) -> bool:
        return self.status == OK

    @property
    def rejected(self) -> bool:
        return self.status == REJECTED


@dataclass
class _Pending:
    request_id: int
    matrix: CSRMatrix
    dense: np.ndarray
    # (full content fingerprint, feature width): only requests that share
    # both the matrix values and the dense width may batch together.
    key: "tuple[str, int]"
    enqueued_at: float
    future: "Future[ServeResponse]"


class InferenceService:
    """A multi-worker, micro-batching GNN aggregation service.

    Args:
        dispatcher: Backend dispatcher; a default
            :class:`AdaptiveDispatcher` is built when omitted.
        config: Queueing/batching tunables.
        plan_cache: Plan cache handed to a default dispatcher.

    Use as a context manager (``with InferenceService() as svc``) or call
    :meth:`start`/:meth:`close` explicitly.
    """

    def __init__(
        self,
        dispatcher: "AdaptiveDispatcher | None" = None,
        config: "ServeConfig | None" = None,
        *,
        plan_cache: "PlanCache | None" = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.dispatcher = dispatcher or AdaptiveDispatcher(
            plan_cache=plan_cache
        )
        self._cond = threading.Condition()
        self._queue: "deque[_Pending]" = deque()
        self._workers: list[threading.Thread] = []
        self._closed = False
        self._started = False
        self._ids = itertools.count()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InferenceService":
        """Spawn the worker pool (idempotent)."""
        with self._cond:
            if self._closed:
                raise RuntimeError("service is closed")
            if self._started:
                return self
            self._started = True
        for i in range(self.config.n_workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{i}", daemon=True
            )
            worker.start()
            self._workers.append(worker)
        return self

    def close(self) -> None:
        """Stop accepting requests, drain the queue, join the workers."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        for worker in self._workers:
            worker.join()

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(
        self, matrix: CSRMatrix, dense: np.ndarray
    ) -> "Future[ServeResponse]":
        """Enqueue one aggregation request ``matrix @ dense``.

        Returns a future that resolves to a :class:`ServeResponse`.  When
        the bounded queue is full the future resolves *immediately* with
        a ``rejected`` response — explicit load shedding, never unbounded
        growth.
        """
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError(
                f"dense operand must be 2-D, got shape {dense.shape}"
            )
        if dense.shape[0] != matrix.n_cols:
            raise ValueError(
                f"dimension mismatch: {matrix.shape} @ {dense.shape}"
            )
        request_id = next(self._ids)
        future: "Future[ServeResponse]" = Future()
        obs.counter("serve.service.submitted").inc()
        with self._cond:
            if self._closed:
                raise RuntimeError("service is closed")
            if not self._started:
                raise RuntimeError("service is not started")
            if len(self._queue) >= self.config.max_queue:
                obs.counter("serve.service.rejected").inc()
                future.set_result(
                    ServeResponse(
                        request_id=request_id,
                        status=REJECTED,
                        error=(
                            f"queue full ({len(self._queue)} pending, "
                            f"bound {self.config.max_queue})"
                        ),
                    )
                )
                return future
            pending = _Pending(
                request_id=request_id,
                matrix=matrix,
                dense=dense,
                key=(matrix.fingerprint(include_values=True), dense.shape[1]),
                enqueued_at=time.monotonic(),
                future=future,
            )
            self._queue.append(pending)
            obs.counter("serve.service.accepted").inc()
            self._cond.notify()
        return future

    def infer(
        self,
        matrix: CSRMatrix,
        dense: np.ndarray,
        timeout: "float | None" = None,
    ) -> ServeResponse:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(matrix, dense).result(timeout=timeout)

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            batch = self._gather_batch()
            if batch is None:
                return
            self._execute_batch(batch)

    def _gather_batch(self) -> "list[_Pending] | None":
        """Collect one fingerprint-homogeneous batch (or ``None`` to exit).

        Takes the oldest queued request as the batch head, then keeps
        pulling same-key requests until the batch is full or the head has
        waited ``max_wait_ms``; the condition variable is released while
        waiting so other workers keep draining other keys.
        """
        max_wait = self.config.max_wait_ms / 1000.0
        with self._cond:
            while not self._queue:
                if self._closed:
                    return None
                self._cond.wait(timeout=0.1)
            head = self._queue.popleft()
            batch = [head]
            deadline = head.enqueued_at + max_wait
            while len(batch) < self.config.max_batch:
                self._take_matching(batch)
                if len(batch) >= self.config.max_batch:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    break
                self._cond.wait(timeout=min(remaining, 0.01))
            return batch

    def _take_matching(self, batch: "list[_Pending]") -> None:
        """Move queued requests with the batch head's key into ``batch``."""
        key = batch[0].key
        kept: "deque[_Pending]" = deque()
        while self._queue:
            pending = self._queue.popleft()
            if pending.key == key and len(batch) < self.config.max_batch:
                batch.append(pending)
            else:
                kept.append(pending)
        self._queue.extend(kept)

    def _execute_batch(self, batch: "list[_Pending]") -> None:
        matrix = batch[0].matrix
        started = time.monotonic()
        queue_waits = [started - p.enqueued_at for p in batch]
        # The batching key includes the feature width, so every member
        # shares one width and the stacked result splits evenly.
        width = batch[0].dense.shape[1]
        stacked = (
            np.hstack([p.dense for p in batch])
            if len(batch) > 1
            else batch[0].dense
        )
        obs.counter("serve.service.batches").inc()
        obs.histogram("serve.service.batch_size").observe(float(len(batch)))
        try:
            with obs.span(
                "serve.service.batch",
                batch_size=len(batch),
                nnz=matrix.nnz,
                dim=int(stacked.shape[1]),
            ):
                result = call_with_timeout(
                    lambda: self.dispatcher.execute(
                        matrix,
                        stacked,
                        # Key plans/bandit arms by the per-request width so
                        # batch size never fragments the plan cache.
                        plan_dim=width,
                        verify=self.config.verify,
                    ),
                    self.config.request_timeout,
                )
        except ExperimentTimeoutError as exc:
            self._fail_batch(batch, queue_waits, started, f"timeout: {exc}")
            return
        except Exception as exc:  # dispatcher already absorbed backend faults
            self._fail_batch(
                batch, queue_waits, started, f"{type(exc).__name__}: {exc}"
            )
            return
        service_seconds = time.monotonic() - started
        obs.histogram("serve.service.latency_seconds").observe(service_seconds)
        for i, (pending, wait) in enumerate(zip(batch, queue_waits)):
            if len(batch) == 1:
                # The whole result belongs to this request — no copy.
                output = result.output
            else:
                # Copy the slice: a view into the stacked batch result
                # would let one client's mutation corrupt another's reply
                # and pin the full batch array for every response.
                output = result.output[:, i * width : (i + 1) * width].copy()
            obs.counter("serve.service.completed").inc()
            pending.future.set_result(
                ServeResponse(
                    request_id=pending.request_id,
                    status=OK,
                    output=output,
                    backend=result.backend,
                    fallback_used=result.fallback_used,
                    batch_size=len(batch),
                    queue_seconds=wait,
                    service_seconds=service_seconds,
                )
            )

    def _fail_batch(
        self,
        batch: "list[_Pending]",
        queue_waits: "list[float]",
        started: float,
        error: str,
    ) -> None:
        service_seconds = time.monotonic() - started
        obs.counter("serve.service.errors").inc(len(batch))
        for pending, wait in zip(batch, queue_waits):
            pending.future.set_result(
                ServeResponse(
                    request_id=pending.request_id,
                    status=ERROR,
                    batch_size=len(batch),
                    queue_seconds=wait,
                    service_seconds=service_seconds,
                    error=error,
                )
            )
