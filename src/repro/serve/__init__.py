"""``repro.serve`` — the batching, plan-caching GNN inference serving layer.

The ROADMAP's request path on top of the one-shot experiment harness:

* :mod:`repro.serve.service` — :class:`InferenceService`: bounded
  admission with explicit load shedding, dynamic micro-batching by graph
  content fingerprint, a supervised multi-worker execution pool,
  per-request deadlines and per-batch timeouts, and a
  ``HEALTHY/DEGRADED/UNHEALTHY`` health surface.
* :mod:`repro.serve.plancache` — :class:`PlanCache`: a process-wide,
  thread-safe, LRU-bounded cache of :class:`CompiledPlan` objects keyed
  by CSR content fingerprints.
* :mod:`repro.serve.dispatch` — :class:`AdaptiveDispatcher`: modeled
  kernel cycles as the prior, epsilon-greedy refinement from measured
  latencies, per-backend circuit breakers, forced fallback to the
  verified executor on any oracle failure (the ``verified-floor`` when
  every breaker is open).
* :mod:`repro.serve.guard` — :class:`CircuitBreaker` and
  :class:`WorkerSupervisor`, the failure-domain guards.
* :mod:`repro.serve.procpool` — :class:`ProcessWorkerPool`: the
  ``isolation="process"`` execution tier — subprocess workers attached
  zero-copy to shared-memory CSR segments (:mod:`repro.shm`), with a
  heartbeat reaper that SIGKILLs hung workers, crash containment to the
  affected batch (terminal ``worker_crashed`` status), poison-request
  quarantine, and RSS-based memory guards.
* :mod:`repro.serve.epoch` — :class:`GraphEpochManager`: RCU-style
  epoch management for live graph updates (atomic snapshot install,
  read leases pinning in-flight epochs, precise cache invalidation of
  exactly the retired epochs' fingerprints).
* :mod:`repro.serve.health` — the pure health-evaluation rules behind
  :meth:`InferenceService.health`.
* :mod:`repro.serve.loadgen` — open/closed-loop synthetic traffic and
  the ``python -m repro serve-bench`` subcommand.

Ego-graph minibatch serving (``InferenceService.submit_ego``, the
``--workload ego`` loadgen mode, and the structure-class dispatch tier)
lives in :mod:`repro.sample`; see ``docs/SERVING.md``.

See ``docs/SERVING.md`` for the architecture tour and
``docs/ROBUSTNESS.md`` for the failure-domain model.
"""

from repro.serve.epoch import (
    EpochLease,
    GraphEpochManager,
)
from repro.serve.dispatch import (
    FLOOR_BACKEND,
    AdaptiveDispatcher,
    Backend,
    DispatchResult,
    default_backends,
)
from repro.serve.guard import (
    BreakerConfig,
    CircuitBreaker,
    WorkerPoolExhausted,
    WorkerSupervisor,
)
from repro.serve.health import (
    DEGRADED,
    HEALTHY,
    UNHEALTHY,
    HealthCause,
    HealthPolicy,
    HealthReport,
    evaluate_health,
)
from repro.serve.plancache import (
    CompiledPlan,
    PlanCache,
    PlanCacheStats,
    RepairedPlan,
    compile_plan,
    get_plan_cache,
    repair_plan,
    set_plan_cache,
)
from repro.serve.procpool import (
    QUARANTINED,
    WORKER_CRASHED,
    PoolError,
    ProcessWorkerPool,
    ProcPoolConfig,
    ProcResult,
    QuarantinedError,
    WorkerCrashError,
    poison_key,
)
from repro.serve.service import (
    EgoSubmission,
    InferenceService,
    ServeConfig,
    ServeResponse,
)

__all__ = [
    "AdaptiveDispatcher",
    "Backend",
    "BreakerConfig",
    "CircuitBreaker",
    "CompiledPlan",
    "DEGRADED",
    "DispatchResult",
    "EgoSubmission",
    "EpochLease",
    "FLOOR_BACKEND",
    "GraphEpochManager",
    "HEALTHY",
    "HealthCause",
    "HealthPolicy",
    "HealthReport",
    "InferenceService",
    "PlanCache",
    "PlanCacheStats",
    "PoolError",
    "ProcPoolConfig",
    "ProcResult",
    "ProcessWorkerPool",
    "QUARANTINED",
    "QuarantinedError",
    "RepairedPlan",
    "ServeConfig",
    "ServeResponse",
    "UNHEALTHY",
    "WORKER_CRASHED",
    "WorkerCrashError",
    "WorkerPoolExhausted",
    "WorkerSupervisor",
    "compile_plan",
    "default_backends",
    "evaluate_health",
    "get_plan_cache",
    "poison_key",
    "repair_plan",
    "set_plan_cache",
]
