"""``repro.serve`` — the batching, plan-caching GNN inference serving layer.

The ROADMAP's request path on top of the one-shot experiment harness:

* :mod:`repro.serve.service` — :class:`InferenceService`: bounded
  admission with explicit load shedding, dynamic micro-batching by graph
  content fingerprint, a multi-worker execution pool, per-batch
  timeouts.
* :mod:`repro.serve.plancache` — :class:`PlanCache`: a process-wide,
  thread-safe, LRU-bounded cache of :class:`CompiledPlan` objects keyed
  by CSR content fingerprints.
* :mod:`repro.serve.dispatch` — :class:`AdaptiveDispatcher`: modeled
  kernel cycles as the prior, epsilon-greedy refinement from measured
  latencies, forced fallback to the verified executor on any oracle
  failure.
* :mod:`repro.serve.loadgen` — open/closed-loop synthetic traffic and
  the ``python -m repro serve-bench`` subcommand.

See ``docs/SERVING.md`` for the architecture tour.
"""

from repro.serve.dispatch import (
    AdaptiveDispatcher,
    Backend,
    DispatchResult,
    default_backends,
)
from repro.serve.plancache import (
    CompiledPlan,
    PlanCache,
    PlanCacheStats,
    compile_plan,
    get_plan_cache,
    set_plan_cache,
)
from repro.serve.service import (
    InferenceService,
    ServeConfig,
    ServeResponse,
)

__all__ = [
    "AdaptiveDispatcher",
    "Backend",
    "CompiledPlan",
    "DispatchResult",
    "InferenceService",
    "PlanCache",
    "PlanCacheStats",
    "ServeConfig",
    "ServeResponse",
    "compile_plan",
    "default_backends",
    "get_plan_cache",
    "set_plan_cache",
]
