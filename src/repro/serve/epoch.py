"""RCU-style graph epoch management for serving under live updates.

:class:`GraphEpochManager` sits between a mutable
:class:`~repro.graphs.delta.DeltaCSR` and the serving stack's caches,
enforcing the stack's one consistency rule: **a request executes
against the epoch it admitted under, end to end.**

* :meth:`acquire` hands out an :class:`EpochLease` pinning the current
  snapshot — the RCU read-side critical section.  The service takes one
  per admitted request and releases it at the response boundary.
* :meth:`apply_updates` installs a new snapshot atomically (writers
  never block readers); the superseded epoch keeps serving its
  in-flight leases.
* An epoch whose lease count drains after being superseded is
  **retired**: every registered cache drops exactly that epoch's keys
  (``invalidate_fingerprint`` / ``forget_fingerprint``), never a global
  flush.  Fingerprints shared with live epochs — the compaction base
  that repairs lean on — are refcounted and survive until the last
  sharer retires.

:meth:`stats` reports epoch lag (current epoch minus oldest still-live
epoch) and the delta's compaction backlog for the health surface.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable

from repro import obs
from repro.formats import CSRMatrix
from repro.graphs.delta import DeltaCSR, EdgeUpdate, GraphSnapshot


class EpochLease:
    """A read lease pinning one graph epoch for one request.

    Idempotent: calling :meth:`release` twice (or racing a release from
    a finalizer) decrements the epoch's lease count exactly once.
    """

    __slots__ = ("snapshot", "_manager", "_released")

    def __init__(self, manager: "GraphEpochManager", snapshot: GraphSnapshot):
        self.snapshot = snapshot
        self._manager = manager
        self._released = False

    @property
    def epoch(self) -> int:
        """Epoch number this lease pins."""
        return self.snapshot.epoch

    @property
    def matrix(self) -> CSRMatrix:
        """The pinned epoch's compacted matrix."""
        return self.snapshot.matrix

    def release(self) -> None:
        """Drop the pin (idempotent); retirement may proceed."""
        if self._released:
            return
        self._released = True
        self._manager._release(self.snapshot.epoch)

    def __enter__(self) -> "EpochLease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


@dataclass
class _EpochState:
    snapshot: GraphSnapshot
    leases: int = 0
    superseded: bool = False


@dataclass
class _Caches:
    """Registered invalidation targets, split by their hook name."""

    invalidate: "list[object]" = field(default_factory=list)
    forget: "list[object]" = field(default_factory=list)
    note: "list[object]" = field(default_factory=list)


class GraphEpochManager:
    """Epoch lifecycle: acquire leases, install updates, retire precisely.

    Args:
        source: The live graph — a :class:`DeltaCSR`, or a bare
            :class:`CSRMatrix` to wrap in one.
        caches: Objects to keep coherent.  Anything with
            ``invalidate_fingerprint(fp)`` (ScheduleCache, PlanCache,
            EnginePlanCache) is invalidated at retirement; anything with
            ``forget_fingerprint(fp)`` (Autotuner) likewise; anything
            with ``note_snapshot(snapshot)`` (PlanCache) is told about
            each installed snapshot so it can repair instead of
            recompile.
        compact_threshold: Forwarded to a :class:`DeltaCSR` built from a
            bare matrix (ignored when ``source`` already is one).
    """

    def __init__(
        self,
        source: "DeltaCSR | CSRMatrix",
        *,
        caches: "Iterable[object]" = (),
        compact_threshold: int = 1024,
    ) -> None:
        if isinstance(source, DeltaCSR):
            self.delta = source
        else:
            self.delta = DeltaCSR(source, compact_threshold=compact_threshold)
        self._lock = threading.Lock()
        self._caches = _Caches()
        for cache in caches:
            self.register_cache(cache)
        self.retired_epochs = 0
        self.updates_applied = 0
        # Fingerprints whose owner epoch retired while another live
        # epoch still shares them (e.g. the repair base); invalidated
        # once no live epoch references them.
        self._pending_invalidate: "set[str]" = set()
        snapshot = self.delta.snapshot()
        self._current = snapshot.epoch
        self._epochs: "dict[int, _EpochState]" = {
            snapshot.epoch: _EpochState(snapshot)
        }
        self._announce(snapshot)

    def register_cache(self, cache: object) -> None:
        """Register one invalidation/notification target (see class docs)."""
        known = False
        if callable(getattr(cache, "invalidate_fingerprint", None)):
            self._caches.invalidate.append(cache)
            known = True
        if callable(getattr(cache, "forget_fingerprint", None)):
            self._caches.forget.append(cache)
            known = True
        if callable(getattr(cache, "note_snapshot", None)):
            self._caches.note.append(cache)
            known = True
        if not known:
            raise TypeError(
                f"{type(cache).__name__} exposes none of "
                "invalidate_fingerprint/forget_fingerprint/note_snapshot"
            )

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    @property
    def current_epoch(self) -> int:
        """The newest installed epoch number."""
        with self._lock:
            return self._current

    def current_snapshot(self) -> GraphSnapshot:
        """The newest epoch's immutable snapshot."""
        with self._lock:
            return self._epochs[self._current].snapshot

    def acquire(self) -> EpochLease:
        """Lease the current epoch (released at the response boundary)."""
        with self._lock:
            state = self._epochs[self._current]
            state.leases += 1
            lease = EpochLease(self, state.snapshot)
        obs.counter("serve.epoch.leases").inc()
        return lease

    def _release(self, epoch: int) -> None:
        retired: "list[GraphSnapshot]" = []
        with self._lock:
            state = self._epochs.get(epoch)
            if state is None:
                return
            state.leases -= 1
            if state.superseded and state.leases <= 0:
                del self._epochs[epoch]
                retired.append(state.snapshot)
            invalidate = self._collect_invalidations_locked(retired)
        self._retire(retired, invalidate)

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def apply_updates(self, updates: "Iterable[EdgeUpdate]") -> GraphSnapshot:
        """Apply one update batch and install its snapshot atomically.

        Returns the installed snapshot.  In-flight leases keep their
        epochs alive; superseded epochs with no leases retire
        immediately (their cache keys are dropped before this returns).
        """
        batch = list(updates)
        retired: "list[GraphSnapshot]" = []
        with self._lock:
            self.delta.apply(batch)
            snapshot = self.delta.snapshot()
            self.updates_applied += len(batch)
            previous = self._epochs[self._current]
            previous.superseded = True
            self._current = snapshot.epoch
            self._epochs[snapshot.epoch] = _EpochState(snapshot)
            for epoch, state in list(self._epochs.items()):
                if state.superseded and state.leases <= 0:
                    del self._epochs[epoch]
                    retired.append(state.snapshot)
            invalidate = self._collect_invalidations_locked(retired)
        obs.counter("serve.epoch.installed").inc()
        if obs.enabled():
            obs.gauge("serve.epoch.current").set(float(snapshot.epoch))
            obs.gauge("serve.epoch.live").set(float(len(self._epochs)))
        self._announce(snapshot)
        self._retire(retired, invalidate)
        return snapshot

    # ------------------------------------------------------------------
    # Retirement
    # ------------------------------------------------------------------
    def _live_fingerprints_locked(self) -> "set[str]":
        live: "set[str]" = set()
        for state in self._epochs.values():
            live.add(state.snapshot.fingerprint)
            live.add(state.snapshot.base_fingerprint)
        return live

    def _collect_invalidations_locked(
        self, retired: "list[GraphSnapshot]"
    ) -> "list[str]":
        """Fingerprints safe to drop now that ``retired`` epochs ended.

        A retired epoch contributes its own fingerprint and its base's;
        anything still referenced by a live epoch (snapshot or repair
        base) stays pending until its last sharer retires.
        """
        if not retired and not self._pending_invalidate:
            return []
        for snapshot in retired:
            self._pending_invalidate.add(snapshot.fingerprint)
            self._pending_invalidate.add(snapshot.base_fingerprint)
        live = self._live_fingerprints_locked()
        ready = sorted(self._pending_invalidate - live)
        self._pending_invalidate -= set(ready)
        return ready

    def _retire(
        self, retired: "list[GraphSnapshot]", fingerprints: "list[str]"
    ) -> None:
        if retired:
            self.retired_epochs += len(retired)
            obs.counter("serve.epoch.retired").inc(len(retired))
        for fingerprint in fingerprints:
            dropped = 0
            for cache in self._caches.invalidate:
                dropped += cache.invalidate_fingerprint(fingerprint)
            for tuner in self._caches.forget:
                dropped += tuner.forget_fingerprint(fingerprint)
            obs.counter("serve.epoch.invalidated_keys").inc(dropped)

    def _announce(self, snapshot: GraphSnapshot) -> None:
        for cache in self._caches.note:
            cache.note_snapshot(snapshot)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Epoch and compaction state for health() and run records."""
        with self._lock:
            live = sorted(self._epochs)
            leases = sum(state.leases for state in self._epochs.values())
            current = self._current
        log_size = self.delta.log_size
        threshold = self.delta.compact_threshold
        stats = {
            "current_epoch": current,
            "live_epochs": len(live),
            "oldest_live_epoch": live[0] if live else current,
            "epoch_lag": current - (live[0] if live else current),
            "leases": leases,
            "retired_epochs": self.retired_epochs,
            "updates_applied": self.updates_applied,
            "log_size": log_size,
            "compact_threshold": threshold,
            "compaction_backlog": log_size / threshold,
            "compactions": self.delta.compactions,
        }
        if obs.enabled():
            obs.gauge("serve.epoch.lag").set(float(stats["epoch_lag"]))
            obs.gauge("serve.epoch.leases_outstanding").set(float(leases))
        return stats
