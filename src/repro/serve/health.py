"""Service health states: ``HEALTHY`` / ``DEGRADED`` / ``UNHEALTHY``.

:func:`evaluate_health` is a *pure* function from a service snapshot
(queue depth, supervisor state, breaker states, deadline-miss window) to
a :class:`HealthReport` with machine-readable :class:`HealthCause`
entries, so the rules are unit-testable without threads.  The service
itself exposes it as :meth:`InferenceService.health
<repro.serve.service.InferenceService.health>`, and the load generator
and ``serve-bench``/``chaos-serve`` reports embed the result.

Severity model:

* **UNHEALTHY** — the service cannot do real work: it is closed, the
  worker pool is dead or its restart budget is exhausted (for sharded
  serving, *any* shard's pool — every batch needs all shards:
  ``shard-pool-exhausted``), or *every* dispatch backend's breaker is
  open (only the verified floor remains).
* **DEGRADED** — serving, but impaired: some (not all) breakers open or
  probing, recent worker crashes/restarts, queue near saturation, a
  deadline-miss rate above threshold, a route burning (or having
  exhausted) its SLO error budget (``slo-burn-high`` /
  ``slo-budget-exhausted``; see :mod:`repro.obs.slo`), — on
  epoch-managed services — in-flight leases pinning old graph epochs
  (``epoch-lag-high``) or the delta log nearing forced compaction
  (``compaction-backlog``; see :mod:`repro.serve.epoch`), or — with
  process isolation — quarantined poison requests
  (``worker-quarantine-active``), workers reaped for missed heartbeats
  (``heartbeat-misses-high``), or pool RSS past the admission highwater
  (``memory-pressure``; see :mod:`repro.serve.procpool`), or — with
  shard isolation — a shard worker crash absorbed by re-replay
  (``shard-worker-crash-recent`` / ``shard-replays-high``) or a
  partition whose slowest shard gates every batch
  (``shard-imbalance-high``; see :mod:`repro.shard.router`).
* **HEALTHY** — none of the above.

Each evaluation sets the ``serve.health.severity`` gauge
(0 = healthy, 1 = degraded, 2 = unhealthy) and bumps
``serve.health.checks``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs

HEALTHY = "healthy"
DEGRADED = "degraded"
UNHEALTHY = "unhealthy"

_SEVERITY = {HEALTHY: 0, DEGRADED: 1, UNHEALTHY: 2}


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds that turn raw service state into health causes.

    Attributes:
        queue_saturation: Queue-depth fraction of ``max_queue`` at which
            the service is considered saturated.
        deadline_miss_rate: Fraction of recent requests shed or timed
            out past their deadline that degrades the service.
        min_miss_window: Minimum recent-request sample before the miss
            rate is judged at all (a single early miss is not a trend).
        crash_recent_seconds: A worker crash within this trailing window
            degrades the service; older crashes are history, not state,
            so a supervised service can *recover* to ``HEALTHY``.
        slo_burn_degraded: SLO error-budget burn rate (1.0 = burning
            exactly at budget) at or above which a route degrades the
            service; exhaustion of a route's budget always degrades.
        slo_min_samples: Minimum per-route SLO sample count before burn
            rate is judged (a single slow warm-up request is not a
            trend).
        epoch_lag_degraded: Live-graph epoch lag (current epoch minus
            the oldest epoch still pinned by in-flight leases) at or
            above which the service degrades — old snapshots and their
            cache entries are being held alive.
        compaction_backlog_degraded: Delta-log fill fraction
            (``log_size / compact_threshold``) at or above which the
            service degrades: sustained update pressure is about to
            force a compaction (a full rebase) on the serving path.
        heartbeat_kills_degraded: Process-isolation pools only: recent
            heartbeat-miss SIGKILLs (workers reaped for going silent
            while idle) at or above which the service degrades with
            ``heartbeat-misses-high``.
        shard_imbalance_degraded: Shard isolation only: partition
            balance (slowest shard's nnz over the mean) at or above
            which the service degrades with ``shard-imbalance-high`` —
            one overloaded shard gates every batch.
        shard_replays_degraded: Shard isolation only: recent sub-batch
            re-replays (a shard worker crashed mid-batch and its
            respawned successor re-ran the slice) at or above which the
            service degrades with ``shard-replays-high``.
    """

    queue_saturation: float = 0.8
    deadline_miss_rate: float = 0.1
    min_miss_window: int = 8
    crash_recent_seconds: float = 30.0
    slo_burn_degraded: float = 1.0
    slo_min_samples: int = 16
    epoch_lag_degraded: int = 4
    compaction_backlog_degraded: float = 0.9
    heartbeat_kills_degraded: int = 1
    shard_imbalance_degraded: float = 2.0
    shard_replays_degraded: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.queue_saturation <= 1.0:
            raise ValueError(
                f"queue_saturation must be in (0, 1], got {self.queue_saturation}"
            )
        if not 0.0 < self.deadline_miss_rate <= 1.0:
            raise ValueError(
                "deadline_miss_rate must be in (0, 1], "
                f"got {self.deadline_miss_rate}"
            )
        if self.min_miss_window < 1:
            raise ValueError(
                f"min_miss_window must be >= 1, got {self.min_miss_window}"
            )
        if self.crash_recent_seconds < 0:
            raise ValueError(
                "crash_recent_seconds must be >= 0, "
                f"got {self.crash_recent_seconds}"
            )
        if self.slo_burn_degraded <= 0:
            raise ValueError(
                f"slo_burn_degraded must be positive, got "
                f"{self.slo_burn_degraded}"
            )
        if self.slo_min_samples < 1:
            raise ValueError(
                f"slo_min_samples must be >= 1, got {self.slo_min_samples}"
            )
        if self.epoch_lag_degraded < 1:
            raise ValueError(
                f"epoch_lag_degraded must be >= 1, got {self.epoch_lag_degraded}"
            )
        if self.compaction_backlog_degraded <= 0:
            raise ValueError(
                "compaction_backlog_degraded must be positive, "
                f"got {self.compaction_backlog_degraded}"
            )
        if self.heartbeat_kills_degraded < 1:
            raise ValueError(
                "heartbeat_kills_degraded must be >= 1, "
                f"got {self.heartbeat_kills_degraded}"
            )
        if self.shard_imbalance_degraded <= 1.0:
            raise ValueError(
                "shard_imbalance_degraded must be > 1.0, "
                f"got {self.shard_imbalance_degraded}"
            )
        if self.shard_replays_degraded < 1:
            raise ValueError(
                "shard_replays_degraded must be >= 1, "
                f"got {self.shard_replays_degraded}"
            )


@dataclass(frozen=True)
class HealthCause:
    """One machine-readable reason the service is not fully healthy.

    Attributes:
        kind: Stable cause identifier (``breaker-open``,
            ``worker-crash-recent``, ``queue-saturated``, ...).
        severity: The state this cause implies on its own
            (``degraded`` or ``unhealthy``).
        detail: Human-readable explanation.
    """

    kind: str
    severity: str
    detail: str = ""

    def to_dict(self) -> dict:
        """JSON-ready form for run records."""
        return {
            "kind": self.kind,
            "severity": self.severity,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class HealthReport:
    """Aggregate health verdict plus its contributing causes."""

    status: str
    causes: "tuple[HealthCause, ...]" = ()
    snapshot: dict = field(default_factory=dict, repr=False)

    @property
    def healthy(self) -> bool:
        """Whether no cause degraded the service."""
        return self.status == HEALTHY

    def to_dict(self) -> dict:
        """JSON-ready form for dashboards and run records."""
        return {
            "status": self.status,
            "causes": [cause.to_dict() for cause in self.causes],
            "snapshot": self.snapshot,
        }

    def render(self) -> str:
        """One-line human-readable verdict with its causes."""
        if not self.causes:
            return f"health: {self.status}"
        reasons = "; ".join(
            f"{c.kind} ({c.detail})" if c.detail else c.kind
            for c in self.causes
        )
        return f"health: {self.status} — {reasons}"


def evaluate_health(
    snapshot: dict, policy: "HealthPolicy | None" = None
) -> HealthReport:
    """Turn one service snapshot into a :class:`HealthReport`.

    Args:
        snapshot: Service state with keys ``closed``, ``started``,
            ``queue_depth``, ``max_queue``, ``supervisor`` (a
            :meth:`WorkerSupervisor.snapshot
            <repro.serve.guard.WorkerSupervisor.snapshot>` dict plus
            ``recent_crashes``), ``breakers`` (backend name -> state),
            and ``deadline`` (``misses``/``window`` recent counts).
            Missing keys are treated as "feature not in play".
        policy: Thresholds; defaults to :class:`HealthPolicy`.
    """
    policy = policy or HealthPolicy()
    causes: "list[HealthCause]" = []

    if snapshot.get("closed"):
        causes.append(
            HealthCause("service-closed", UNHEALTHY, "service is closed")
        )
    elif not snapshot.get("started", True):
        causes.append(
            HealthCause("service-not-started", UNHEALTHY, "start() not called")
        )

    supervisor = snapshot.get("supervisor") or {}
    if supervisor:
        if supervisor.get("exhausted"):
            causes.append(
                HealthCause(
                    "worker-pool-exhausted",
                    UNHEALTHY,
                    f"restart budget {supervisor.get('restart_budget')} spent "
                    f"after {supervisor.get('crashes')} crashes",
                )
            )
        elif supervisor.get("alive", 1) == 0 and not snapshot.get("closed"):
            causes.append(
                HealthCause(
                    "no-live-workers", UNHEALTHY, "every worker thread is dead"
                )
            )
        recent = supervisor.get("recent_crashes", 0)
        if recent and not supervisor.get("exhausted"):
            causes.append(
                HealthCause(
                    "worker-crash-recent",
                    DEGRADED,
                    f"{recent} crash(es) in the last "
                    f"{policy.crash_recent_seconds:g}s "
                    f"({supervisor.get('restarts', 0)} restart(s) total)",
                )
            )

    breakers: dict = snapshot.get("breakers") or {}
    if breakers:
        not_closed = {
            name: state for name, state in breakers.items() if state != "closed"
        }
        open_only = [n for n, s in not_closed.items() if s == "open"]
        if open_only and len(open_only) == len(breakers):
            causes.append(
                HealthCause(
                    "all-breakers-open",
                    UNHEALTHY,
                    "every backend breaker is open; only the verified "
                    "floor is serving",
                )
            )
        else:
            for name, state in sorted(not_closed.items()):
                causes.append(
                    HealthCause(
                        "breaker-open" if state == "open" else "breaker-probing",
                        DEGRADED,
                        f"backend {name!r} breaker is {state}",
                    )
                )

    max_queue = snapshot.get("max_queue", 0)
    depth = snapshot.get("queue_depth", 0)
    if max_queue and depth >= policy.queue_saturation * max_queue:
        causes.append(
            HealthCause(
                "queue-saturated",
                DEGRADED,
                f"queue depth {depth}/{max_queue} at or past "
                f"{policy.queue_saturation:.0%} saturation",
            )
        )

    deadline = snapshot.get("deadline") or {}
    window = deadline.get("window", 0)
    misses = deadline.get("misses", 0)
    if window >= policy.min_miss_window:
        rate = misses / window
        if rate >= policy.deadline_miss_rate:
            causes.append(
                HealthCause(
                    "deadline-misses",
                    DEGRADED,
                    f"{misses}/{window} recent requests missed their "
                    f"deadline ({rate:.0%})",
                )
            )

    slo = snapshot.get("slo") or {}
    for route, state in sorted((slo.get("routes") or {}).items()):
        if state.get("samples", 0) < policy.slo_min_samples:
            continue
        burn = state.get("burn_rate", 0.0)
        if state.get("exhausted"):
            causes.append(
                HealthCause(
                    "slo-budget-exhausted",
                    DEGRADED,
                    f"route {route!r} spent its error budget "
                    f"(burn {burn:.2f}x over {state.get('samples')} samples)",
                )
            )
        elif burn >= policy.slo_burn_degraded:
            causes.append(
                HealthCause(
                    "slo-burn-high",
                    DEGRADED,
                    f"route {route!r} burning error budget at {burn:.2f}x "
                    f"over {state.get('samples')} samples",
                )
            )

    epochs = snapshot.get("epochs") or {}
    if epochs:
        lag = epochs.get("epoch_lag", 0)
        if lag >= policy.epoch_lag_degraded:
            causes.append(
                HealthCause(
                    "epoch-lag-high",
                    DEGRADED,
                    f"oldest leased epoch trails the current one by {lag} "
                    f"(>= {policy.epoch_lag_degraded}); "
                    f"{epochs.get('leases', 0)} lease(s) outstanding",
                )
            )
        backlog = epochs.get("compaction_backlog", 0.0)
        if backlog >= policy.compaction_backlog_degraded:
            causes.append(
                HealthCause(
                    "compaction-backlog",
                    DEGRADED,
                    f"delta log at {epochs.get('log_size', 0)}/"
                    f"{epochs.get('compact_threshold', 0)} "
                    f"({backlog:.0%} of the compaction threshold)",
                )
            )

    procpool = snapshot.get("procpool") or {}
    if procpool:
        pool_supervisor = procpool.get("supervisor") or {}
        if pool_supervisor.get("exhausted"):
            causes.append(
                HealthCause(
                    "worker-pool-exhausted",
                    UNHEALTHY,
                    "process worker pool spent its restart budget "
                    f"({pool_supervisor.get('restart_budget')}) after "
                    f"{pool_supervisor.get('crashes')} worker deaths",
                )
            )
        quarantine = procpool.get("quarantine") or {}
        if quarantine.get("active", 0) > 0:
            causes.append(
                HealthCause(
                    "worker-quarantine-active",
                    DEGRADED,
                    f"{quarantine['active']} poison request(s) quarantined "
                    f"(threshold {quarantine.get('threshold')} worker "
                    "deaths each)",
                )
            )
        heartbeat_kills = procpool.get("heartbeat_kills_recent", 0)
        if heartbeat_kills >= policy.heartbeat_kills_degraded:
            causes.append(
                HealthCause(
                    "heartbeat-misses-high",
                    DEGRADED,
                    f"{heartbeat_kills} worker(s) recently SIGKILLed for "
                    "missed heartbeats",
                )
            )
        memory = procpool.get("memory") or {}
        if memory.get("pressure"):
            causes.append(
                HealthCause(
                    "memory-pressure",
                    DEGRADED,
                    f"pool RSS {memory.get('total_rss_bytes', 0)} at or "
                    f"above the {memory.get('highwater_bytes')} admission "
                    "highwater; shedding new work",
                )
            )

    shards = snapshot.get("shards") or {}
    if shards:
        router_supervisor = shards.get("supervisor") or {}
        exhausted_shards = router_supervisor.get("exhausted_shards") or []
        if router_supervisor.get("exhausted"):
            causes.append(
                HealthCause(
                    "shard-pool-exhausted",
                    UNHEALTHY,
                    f"shard(s) {exhausted_shards} spent their restart "
                    f"budget ({router_supervisor.get('restart_budget')}); "
                    "every batch needs all shards, so the router cannot "
                    "serve",
                )
            )
        for shard_snapshot in shards.get("shards") or []:
            shard_supervisor = shard_snapshot.get("supervisor") or {}
            recent = shard_supervisor.get("recent_crashes", 0)
            if recent and not shard_supervisor.get("exhausted"):
                causes.append(
                    HealthCause(
                        "shard-worker-crash-recent",
                        DEGRADED,
                        f"shard {shard_snapshot.get('shard_id')} worker "
                        f"crashed {recent}x in the last "
                        f"{policy.crash_recent_seconds:g}s "
                        "(respawned; sub-batches re-replayed)",
                    )
                )
        replays = shards.get("replays_recent", 0)
        if replays >= policy.shard_replays_degraded:
            causes.append(
                HealthCause(
                    "shard-replays-high",
                    DEGRADED,
                    f"{replays} shard sub-batch(es) re-replayed after "
                    "worker crashes in the last 30s",
                )
            )
        partition = shards.get("partition") or {}
        balance = partition.get("balance", 1.0)
        if balance >= policy.shard_imbalance_degraded:
            causes.append(
                HealthCause(
                    "shard-imbalance-high",
                    DEGRADED,
                    f"partition balance {balance:.2f}x (slowest shard "
                    "over the mean) at or above "
                    f"{policy.shard_imbalance_degraded:g}x; the "
                    "overloaded shard gates every batch",
                )
            )
        quarantine = shards.get("quarantine") or {}
        if quarantine.get("active", 0) > 0:
            causes.append(
                HealthCause(
                    "worker-quarantine-active",
                    DEGRADED,
                    f"{quarantine['active']} poison request(s) "
                    "quarantined across the shard pools",
                )
            )
        memory = shards.get("memory") or {}
        if memory.get("pressure"):
            causes.append(
                HealthCause(
                    "memory-pressure",
                    DEGRADED,
                    f"shard pools' RSS {memory.get('total_rss_bytes', 0)} "
                    "at or above an admission highwater; shedding new "
                    "work",
                )
            )

    if any(cause.severity == UNHEALTHY for cause in causes):
        status = UNHEALTHY
    elif causes:
        status = DEGRADED
    else:
        status = HEALTHY

    obs.counter("serve.health.checks").inc()
    obs.gauge("serve.health.severity").set(float(_SEVERITY[status]))
    report = HealthReport(status=status, causes=tuple(causes), snapshot=snapshot)
    return report
