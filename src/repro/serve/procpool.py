"""Process-isolated execution workers over shared-memory graph segments.

Every execution tier before this one ran as threads inside a single
Python process, so one hung, crashed, or memory-hogging worker could
stall or kill the whole service — ``call_with_timeout`` can only
*abandon* a stuck thread, never kill it.  :class:`ProcessWorkerPool`
closes that gap: each worker is a real OS subprocess that attaches the
graph zero-copy from a checksummed shared-memory CSR segment
(:mod:`repro.shm`), takes batches over a pipe, and is *supervised from
outside its own failure domain*:

* **Heartbeat liveness.**  Idle workers beat on their pipe every
  ``heartbeat_interval``; a worker that stops beating (wedged
  interpreter, stuck import, swap death) past ``heartbeat_timeout`` is
  SIGKILLed and respawned.  Busy workers are covered by the per-batch
  deadline instead: a batch that outlives its budget gets its worker
  SIGKILLed by the reaper — an actual kill, where the thread tier could
  only abandon.
* **Crash containment.**  A worker dying mid-batch (segfault, OOM kill,
  ``os._exit``) fails exactly that batch's requests with a terminal
  :data:`WORKER_CRASHED` status; the pool respawns the worker under the
  shared :class:`~repro.serve.guard.WorkerSupervisor` restart-budget
  semantics and every other queued request proceeds.
* **Poison-request quarantine.**  A request whose content has killed or
  hung workers ``poison_threshold`` times is quarantined: answered
  immediately with a terminal :data:`QUARANTINED` error and never again
  allowed near a worker, so one poison input cannot crash-loop the pool
  to exhaustion.
* **Memory guards.**  The reaper SIGKILLs any worker whose RSS passes
  ``worker_rss_limit_bytes`` *before* the OS OOM-killer picks a victim
  at random, and :meth:`ProcessWorkerPool.memory_pressure` lets the
  service shed new work at admission once the pool's total RSS passes
  ``memory_highwater_bytes``.
* **Torn-segment detection.**  Workers verify each segment's BLAKE2b
  digests at attach; a corrupted segment is reported (never computed
  on), republished from the parent's pristine copy, and every worker's
  stale attach cache is flushed by respawn.

The graph payload is never serialized per request: workers attach the
published segment once per epoch and hold numpy views into the shared
pages (:class:`~repro.shm.AttachedCSR.copied_bytes` stays 0, which the
chaos suite asserts).  Only the per-request dense operands travel the
pipe, and that transport cost is attributed to the ``ipc`` request-trace
stage (:mod:`repro.obs.rtrace`).

Wire-up: ``InferenceService(config=ServeConfig(isolation="process"))``
builds and owns one of these pools; ``python -m repro chaos-proc``
drives the containment matrix end to end.  See ``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import threading
import time
from multiprocessing import shared_memory
from collections import OrderedDict, deque
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.formats import CSRMatrix
from repro.obs import rtrace
from repro.resilience import faults
from repro.serve.guard import WorkerSupervisor
from repro.shm import (
    SegmentChecksumError,
    _no_tracker_register,
    _quiet_close,
    attach_csr,
    publish_csr,
)

# Terminal response statuses owned by the process tier (the service
# re-exports them next to OK/REJECTED/ERROR/DEADLINE_EXCEEDED).
WORKER_CRASHED = "worker_crashed"
QUARANTINED = "quarantined"

# Kill reasons that count as the in-flight request's fault and strike
# its poison key; "segment-flush" and plain shutdown kills do not.
_POISON_REASONS = ("crash", "hang-timeout", "rss-limit")


class PoolError(RuntimeError):
    """Base class for process-pool execution failures.

    ``status`` is the terminal :class:`~repro.serve.service.ServeResponse`
    status the service should answer the affected requests with.
    """

    status = "error"


class WorkerCrashError(PoolError):
    """The batch's worker died (crash, hang reap, or RSS kill)."""

    status = WORKER_CRASHED

    def __init__(self, message: str, reason: str = "crash") -> None:
        super().__init__(message)
        self.reason = reason


class QuarantinedError(PoolError):
    """The request's content is quarantined as poison."""

    status = QUARANTINED


@dataclass(frozen=True)
class ProcPoolConfig:
    """Tunables of one :class:`ProcessWorkerPool`.

    Attributes:
        n_workers: Worker subprocesses.
        heartbeat_interval: Idle-worker beat period (also the reaper's
            scan period), in seconds.
        heartbeat_timeout: An *idle* worker silent this long is presumed
            wedged and SIGKILLed.
        hang_timeout: Default per-batch execution budget; a busy worker
            past it is SIGKILLed (per-call ``timeout`` tightens this).
        poison_threshold: Worker deaths attributable to one request
            content before it is quarantined.
        quarantine_capacity: Most-recent quarantine entries retained
            (bounded so an adversarial key stream cannot grow memory).
        worker_rss_limit_bytes: Per-worker RSS above which the reaper
            SIGKILLs (``None`` disables).
        memory_highwater_bytes: Pool-wide RSS (parent + workers) above
            which :meth:`ProcessWorkerPool.memory_pressure` reports
            pressure so admission can shed (``None`` disables).
        segment_cache_capacity: Published segments kept live in the
            parent (per distinct graph fingerprint; LRU beyond this).
        restart_budget: Worker respawns allowed per ``restart_window``
            seconds (see :class:`~repro.serve.guard.WorkerSupervisor`).
        restart_window: Sliding window for the restart budget; ``None``
            makes the budget a lifetime total.
        start_method: ``multiprocessing`` start method.  ``fork`` keeps
            respawn latency in the low milliseconds; workers run a
            deliberately minimal loop (pipe + numpy only) so inherited
            parent state is never touched.
        kernel: SpMM kernel workers run: ``"reference"`` (the
            :meth:`~repro.formats.csr.CSRMatrix.multiply_dense` ground
            truth, default) or ``"engine"`` (the
            :func:`~repro.engine.kernels.engine_spmm` fast path with a
            per-worker plan cache — what the shard tier uses on its
            compacted per-shard matrices).
        result_transport: How worker outputs return to the parent:
            ``"pipe"`` (pickled over the worker pipe, default) or
            ``"shm"`` (written into a parent-owned shared-memory block,
            skipping the pickle/pipe round-trip — what the shard tier
            uses, where per-shard partial outputs dominate the IPC
            bill).
    """

    n_workers: int = 2
    heartbeat_interval: float = 0.05
    heartbeat_timeout: float = 2.0
    hang_timeout: float = 30.0
    poison_threshold: int = 2
    quarantine_capacity: int = 64
    worker_rss_limit_bytes: "int | None" = None
    memory_highwater_bytes: "int | None" = None
    segment_cache_capacity: int = 4
    restart_budget: int = 8
    restart_window: "float | None" = 60.0
    start_method: str = "fork"
    kernel: str = "reference"
    result_transport: str = "pipe"

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        for name in ("heartbeat_interval", "heartbeat_timeout", "hang_timeout"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.poison_threshold < 1:
            raise ValueError(
                f"poison_threshold must be >= 1, got {self.poison_threshold}"
            )
        if self.quarantine_capacity < 1:
            raise ValueError(
                f"quarantine_capacity must be >= 1, got {self.quarantine_capacity}"
            )
        if self.segment_cache_capacity < 1:
            raise ValueError(
                "segment_cache_capacity must be >= 1, "
                f"got {self.segment_cache_capacity}"
            )
        if self.restart_budget < 0:
            raise ValueError(
                f"restart_budget must be >= 0, got {self.restart_budget}"
            )
        if self.start_method not in ("fork", "spawn", "forkserver"):
            raise ValueError(
                f"unknown start_method {self.start_method!r}"
            )
        if self.kernel not in ("reference", "engine"):
            raise ValueError(
                f"kernel must be 'reference' or 'engine', got {self.kernel!r}"
            )
        if self.result_transport not in ("pipe", "shm"):
            raise ValueError(
                "result_transport must be 'pipe' or 'shm', "
                f"got {self.result_transport!r}"
            )


@dataclass
class ProcResult:
    """One successful pool execution (mirrors ``DispatchResult`` fields).

    Under ``result_transport="shm"`` the ``output`` array is a
    zero-copy view of a pool-owned shared-memory block; consumers that
    are done with it should call :meth:`release` so the warm block (and
    its faulted-in pages) can serve the next request.  ``release`` is
    always safe to call and a no-op for pipe-transported results.
    """

    output: np.ndarray
    backend: str = "procpool"
    fallback_used: bool = False
    kernel_seconds: float = 0.0
    ipc_seconds: float = 0.0
    copied_bytes: int = 0
    worker_id: int = -1
    _release_cb: "object | None" = field(default=None, repr=False, compare=False)

    def release(self) -> None:
        """Return a shm-backed output block to its pool (idempotent)."""
        callback, self._release_cb = self._release_cb, None
        if callback is not None:
            self.output = None
            callback()


def poison_key(matrix_fingerprint: str, dense: np.ndarray) -> str:
    """Content identity of one request for quarantine accounting.

    Covers the graph (by value fingerprint) *and* the dense operand
    bytes: two requests are "the same poison" only when a worker would
    execute the identical computation.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(matrix_fingerprint.encode())
    dense = np.ascontiguousarray(dense, dtype=np.float64)
    digest.update(repr(dense.shape).encode())
    digest.update(dense.data)
    return digest.hexdigest()


def rss_bytes(pid: "int | None" = None) -> int:
    """Resident set size of ``pid`` (default: this process), in bytes."""
    try:
        with open(f"/proc/{pid or os.getpid()}/statm") as handle:
            fields = handle.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):  # pragma: no cover - non-proc OS
        return 0


# ----------------------------------------------------------------------
# Worker subprocess
# ----------------------------------------------------------------------
def _apply_fault(fault: "str | None", delay_seconds: float) -> None:
    """Honor an injected fault marker shipped with the batch."""
    if fault == "crash":
        os._exit(23)
    if fault == "hang":
        while True:  # reaped by the parent's SIGKILL
            time.sleep(0.01)
    if fault == "hog":
        hog = []
        # Bounded balloon: enough to cross any test RSS limit without
        # actually endangering the host; then stall holding it so the
        # reaper (RSS guard or hang timeout) must do the killing.
        for _ in range(24):
            hog.append(np.ones(1 << 21))  # 16 MiB per chunk
            time.sleep(0.002)
        while True:
            time.sleep(0.01)
    if fault == "delay":
        time.sleep(delay_seconds)


def _worker_entry(
    worker_id: int,
    conn,
    heartbeat_interval: float,
    segment_cache_capacity: int,
    kernel: str = "reference",
) -> None:
    """Worker subprocess main loop: beat while idle, compute on demand.

    Deliberately minimal — pipe + numpy + segment attach, nothing else —
    so a ``fork``-started child never touches inherited parent state
    (locks, sockets, the obs registry).  Metrics collection is switched
    off first thing for the same reason.
    """
    try:
        obs.disable()
    except Exception:  # pragma: no cover - defensive
        pass
    if kernel == "engine":
        # Imported here, not at loop scope: the plan cache and arena are
        # per-process, so the fork child builds its own — never touching
        # compiled state inherited from the parent.
        from repro.engine.kernels import engine_spmm as _spmm
    else:
        def _spmm(matrix, stacked):
            return matrix.multiply_dense(stacked)
    attached: "OrderedDict[str, object]" = OrderedDict()
    try:
        while True:
            if not conn.poll(heartbeat_interval):
                try:
                    conn.send(("beat", rss_bytes()))
                except (BrokenPipeError, OSError):
                    return
                continue
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            if message[0] == "stop":
                return
            if message[0] != "exec":  # pragma: no cover - protocol guard
                continue
            _, job_id, meta, stacked, fault, delay_seconds, shm_io = message
            _apply_fault(fault, delay_seconds)
            try:
                entry = attached.get(meta.name)
                if entry is None:
                    entry = attach_csr(meta, verify=True)
                    attached[meta.name] = entry
                    while len(attached) > segment_cache_capacity:
                        attached.popitem(last=False)[1].close()
                else:
                    attached.move_to_end(meta.name)
                block = None
                if shm_io is not None:
                    # shm operand/result transport: the parent staged the
                    # dense operand in a pool-owned block; read it as a
                    # zero-copy view, write the result back beside it,
                    # and send only the (tiny) completion message down
                    # the pipe.
                    block_name, in_shape, out_shape, out_offset = shm_io
                    with _no_tracker_register():
                        block = shared_memory.SharedMemory(
                            name=block_name, create=False
                        )
                    stacked = np.ndarray(
                        in_shape, dtype=np.float64, buffer=block.buf
                    )
                try:
                    started = time.perf_counter()
                    output = _spmm(entry.matrix, stacked)
                    kernel_seconds = time.perf_counter() - started
                    if block is not None:
                        view = np.ndarray(
                            out_shape,
                            dtype=np.float64,
                            buffer=block.buf,
                            offset=out_offset,
                        )
                        view[...] = output
                        del view
                        output = None
                finally:
                    if block is not None:
                        del stacked
                        _quiet_close(block)
                conn.send(
                    ("result", job_id, output, kernel_seconds, entry.copied_bytes)
                )
            except SegmentChecksumError as exc:
                stale = attached.pop(meta.name, None)
                if stale is not None:
                    stale.close()
                conn.send(("error", job_id, "segment_corrupt", str(exc)))
            except Exception as exc:  # noqa: BLE001 - report, stay alive
                conn.send(
                    ("error", job_id, "exec_error", f"{type(exc).__name__}: {exc}")
                )
    finally:
        for entry in attached.values():
            entry.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------
@dataclass
class _Job:
    job_id: int
    keys: "tuple[str, ...]"
    event: threading.Event = field(default_factory=threading.Event)
    result: "ProcResult | None" = None
    error: "tuple[str, str] | None" = None  # (kind, message)
    crash_reason: "str | None" = None


class _Slot:
    """Parent-side state of one worker subprocess."""

    def __init__(self, worker_id: int, proc, conn, now: float) -> None:
        self.worker_id = worker_id
        self.proc = proc
        self.conn = conn
        self.job: "_Job | None" = None
        self.busy_deadline: "float | None" = None
        self.last_beat = now
        self.reported_rss = 0
        self.kill_reason: "str | None" = None
        self.dead = False


class _ProcHandle:
    """Adapter giving a worker Process the supervisor's thread interface."""

    def __init__(self, proc, after_start) -> None:
        self._proc = proc
        self._after_start = after_start

    def start(self) -> None:
        self._proc.start()
        self._after_start()

    def is_alive(self) -> bool:
        return self._proc.is_alive()

    def join(self, timeout: "float | None" = None) -> None:
        self._proc.join(timeout)

    def kill(self) -> None:
        self._proc.kill()

    @property
    def pid(self) -> "int | None":
        return self._proc.pid


class ProcessWorkerPool:
    """Supervised pool of subprocess workers over shared CSR segments.

    Args:
        config: Pool tunables; defaults to :class:`ProcPoolConfig`.

    Use :meth:`start`/:meth:`close` (or as a context manager).  All
    public methods are thread-safe: many service worker threads call
    :meth:`execute` concurrently, each blocking until a subprocess
    returns its batch.
    """

    def __init__(self, config: "ProcPoolConfig | None" = None) -> None:
        self.config = config or ProcPoolConfig()
        self._ctx = multiprocessing.get_context(self.config.start_method)
        self._cond = threading.Condition()
        self._slots: "dict[int, _Slot]" = {}
        self._jobs = 0
        self._started = False
        self._closed = False
        # Published segments by graph value-fingerprint (LRU).
        self._segments: "OrderedDict[str, object]" = OrderedDict()
        self._seg_lock = threading.Lock()
        # Poison accounting: strikes per key, plus the bounded
        # quarantine set itself.
        self._strikes: "OrderedDict[str, int]" = OrderedDict()
        self._quarantined: "OrderedDict[str, str]" = OrderedDict()
        # Kill/telemetry counters.
        self.kills = {"hang-timeout": 0, "heartbeat-miss": 0, "rss-limit": 0}
        self._heartbeat_kill_times: "deque[float]" = deque(maxlen=256)
        self.executed = 0
        self.republished = 0
        self.max_request_copied_bytes = 0
        # Reusable shm output blocks (result_transport="shm"): keeping
        # blocks warm across requests avoids re-faulting their pages in
        # on every execute.  All blocks ever created stay tracked so
        # close() can unlink them even if a consumer never released.
        self._out_lock = threading.Lock()
        self._out_free: "list[shared_memory.SharedMemory]" = []
        self._out_all: "dict[str, shared_memory.SharedMemory]" = {}
        self.supervisor = WorkerSupervisor(
            self._spawn_worker,
            self.config.n_workers,
            restart_budget=self.config.restart_budget,
            restart_window=self.config.restart_window,
        )
        self._reaper: "threading.Thread | None" = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ProcessWorkerPool":
        """Fork the worker subprocesses and the reaper (idempotent)."""
        with self._cond:
            if self._closed:
                raise PoolError("pool is closed")
            if self._started:
                return self
            self._started = True
        self.supervisor.start()
        self._reaper = threading.Thread(
            target=self._reaper_loop, name="procpool-reaper", daemon=True
        )
        self._reaper.start()
        obs.counter("serve.procpool.started").inc()
        return self

    def close(self) -> None:
        """Kill workers, release segments and shm blocks (idempotent)."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            slots = list(self._slots.values())
            self._cond.notify_all()
        for slot in slots:
            try:
                slot.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 2.0
        for slot in slots:
            slot.proc.join(max(0.0, deadline - time.monotonic()))
            if slot.proc.is_alive():
                slot.proc.kill()
                slot.proc.join(1.0)
            try:
                slot.conn.close()
            except OSError:
                pass
        if self._reaper is not None:
            self._reaper.join(2.0)
        with self._seg_lock:
            segments = list(self._segments.values())
            self._segments.clear()
        for segment in segments:
            segment.close()
        with self._out_lock:
            blocks = list(self._out_all.values())
            self._out_all.clear()
            self._out_free.clear()
        for block in blocks:
            _quiet_close(block)
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - defensive
                pass

    def __enter__(self) -> "ProcessWorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Spawning (via the supervisor)
    # ------------------------------------------------------------------
    def _spawn_worker(self, worker_id: int) -> _ProcHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_entry,
            args=(
                worker_id,
                child_conn,
                self.config.heartbeat_interval,
                self.config.segment_cache_capacity,
                self.config.kernel,
            ),
            name=f"procpool-worker-{worker_id}",
            daemon=True,
        )
        slot = _Slot(worker_id, proc, parent_conn, time.monotonic())

        def after_start() -> None:
            # The parent's copy of the child end must close or the
            # receiver would never see EOF when the worker dies.
            child_conn.close()
            with self._cond:
                self._slots[worker_id] = slot
                self._cond.notify_all()
            threading.Thread(
                target=self._receiver_loop,
                args=(slot,),
                name=f"procpool-recv-{worker_id}",
                daemon=True,
            ).start()

        return _ProcHandle(proc, after_start)

    # ------------------------------------------------------------------
    # Receiver + reaper threads
    # ------------------------------------------------------------------
    def _receiver_loop(self, slot: _Slot) -> None:
        """Drain one worker's pipe until it dies; then run the death path."""
        while True:
            try:
                message = slot.conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "beat":
                with self._cond:
                    slot.last_beat = time.monotonic()
                    slot.reported_rss = message[1]
                continue
            if kind == "result":
                _, job_id, output, kernel_seconds, copied = message
                with self._cond:
                    job = slot.job
                    if job is None or job.job_id != job_id:
                        continue  # reply for a job already failed over
                    job.result = ProcResult(
                        output=output,
                        kernel_seconds=kernel_seconds,
                        copied_bytes=copied,
                        worker_id=slot.worker_id,
                    )
                    slot.job = None
                    slot.busy_deadline = None
                    slot.last_beat = time.monotonic()
                    self.executed += 1
                    self.max_request_copied_bytes = max(
                        self.max_request_copied_bytes, copied
                    )
                    self._cond.notify_all()
                job.event.set()
                obs.counter("serve.procpool.batches").inc()
                continue
            if kind == "error":
                _, job_id, err_kind, err_message = message
                with self._cond:
                    job = slot.job
                    if job is None or job.job_id != job_id:
                        continue
                    job.error = (err_kind, err_message)
                    slot.job = None
                    slot.busy_deadline = None
                    slot.last_beat = time.monotonic()
                    self._cond.notify_all()
                job.event.set()
                obs.counter(
                    "serve.procpool.worker_errors", kind=err_kind
                ).inc()
        self._handle_worker_death(slot)

    def _handle_worker_death(self, slot: _Slot) -> None:
        """EOF on a worker pipe: contain, account, respawn."""
        with self._cond:
            if slot.dead:
                return
            slot.dead = True
            closed = self._closed
            self._slots.pop(slot.worker_id, None)
            job = slot.job
            slot.job = None
            reason = slot.kill_reason or "crash"
            self._cond.notify_all()
        slot.proc.join(1.0)
        try:
            slot.conn.close()
        except OSError:
            pass
        if closed:
            if job is not None:  # pragma: no cover - shutdown race
                job.crash_reason = reason
                job.event.set()
            return
        obs.counter("serve.procpool.worker_deaths", reason=reason).inc()
        if job is not None:
            job.crash_reason = reason
            if reason in _POISON_REASONS:
                self._strike(job.keys)
            job.event.set()
        plan = faults.active_plan()
        fault_kind = {
            "crash": "proc-crash",
            "hang-timeout": "proc-hang",
            "heartbeat-miss": "proc-hang",
            "rss-limit": "proc-hog",
        }.get(reason)
        if plan is not None and fault_kind is not None:
            plan.note_detected(fault_kind)
        respawned = self.supervisor.note_crash(
            slot.worker_id,
            WorkerCrashError(f"worker died ({reason})", reason=reason),
        )
        if respawned and plan is not None and fault_kind is not None:
            plan.note_recovered(fault_kind)
        with self._cond:
            self._cond.notify_all()

    def _reaper_loop(self) -> None:
        """SIGKILL workers that hang, go silent, or balloon their RSS."""
        interval = self.config.heartbeat_interval
        while True:
            time.sleep(interval)
            with self._cond:
                if self._closed:
                    return
                slots = list(self._slots.values())
            now = time.monotonic()
            for slot in slots:
                if slot.dead or not slot.proc.is_alive():
                    continue
                reason = None
                limit = self.config.worker_rss_limit_bytes
                if limit is not None:
                    rss = rss_bytes(slot.proc.pid)
                    if rss > limit:
                        reason = "rss-limit"
                if reason is None and slot.busy_deadline is not None:
                    if now >= slot.busy_deadline:
                        reason = "hang-timeout"
                elif reason is None and slot.job is None:
                    if now - slot.last_beat > self.config.heartbeat_timeout:
                        reason = "heartbeat-miss"
                if reason is None:
                    continue
                with self._cond:
                    if slot.dead or slot.kill_reason is not None:
                        continue
                    # Revalidate under the lock: the unlocked scan above
                    # races job hand-off, and an idle-silence verdict
                    # must not kill a worker that just went busy (its
                    # batch would be blamed on a heartbeat miss).
                    if reason == "heartbeat-miss" and slot.job is not None:
                        continue
                    if reason == "hang-timeout" and (
                        slot.busy_deadline is None
                        or now < slot.busy_deadline
                    ):
                        continue
                    slot.kill_reason = reason
                    self.kills[reason] += 1
                    if reason == "heartbeat-miss":
                        self._heartbeat_kill_times.append(now)
                obs.counter("serve.procpool.reaped", reason=reason).inc()
                # SIGKILL; the receiver thread sees EOF and runs the
                # death path (fail job, strike poison, respawn).
                slot.proc.kill()

    # ------------------------------------------------------------------
    # Segments
    # ------------------------------------------------------------------
    def segment_for(self, matrix: CSRMatrix):
        """Published segment for ``matrix`` (publish-once, LRU-bounded).

        The cache keys on the *value* fingerprint (which folds in the
        epoch version), so ``apply_updates`` installing a new epoch
        republished automatically on first use.
        """
        fingerprint = matrix.fingerprint(include_values=True)
        with self._seg_lock:
            segment = self._segments.get(fingerprint)
            if segment is not None:
                self._segments.move_to_end(fingerprint)
                return segment
        # Publish outside the lock (O(nnz) copy), then install.
        fresh = publish_csr(matrix)
        evicted = []
        with self._seg_lock:
            racer = self._segments.get(fingerprint)
            if racer is not None:
                evicted.append(fresh)
                segment = racer
            else:
                self._segments[fingerprint] = fresh
                segment = fresh
                while len(self._segments) > self.config.segment_cache_capacity:
                    evicted.append(self._segments.popitem(last=False)[1])
        for stale in evicted:
            stale.close()
        return segment

    def _republish_after_corruption(self, matrix: CSRMatrix, bad_name: str) -> None:
        """Replace a corrupted segment and flush every worker's caches.

        Workers cache attaches per segment *name*; a republish gets a
        fresh name, but a worker that attached before the corruption
        would keep computing on the torn pages.  Killing the workers is
        the only way to guarantee no stale mapping survives — they
        respawn in milliseconds with cold caches.
        """
        fingerprint = matrix.fingerprint(include_values=True)
        with self._seg_lock:
            current = self._segments.get(fingerprint)
            already_replaced = current is not None and current.name != bad_name
            if not already_replaced:
                self._segments.pop(fingerprint, None)
        if already_replaced:
            return
        if current is not None:
            current.close()
        self.republished += 1
        obs.counter("serve.procpool.segments_republished").inc()
        plan = faults.active_plan()
        if plan is not None:
            plan.note_detected("segment-corrupt")
            plan.note_recovered("segment-corrupt")
        with self._cond:
            victims = [s for s in self._slots.values() if not s.dead]
            for slot in victims:
                if slot.kill_reason is None:
                    slot.kill_reason = "segment-flush"
        for slot in victims:
            if slot.proc.is_alive():
                slot.proc.kill()

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------
    def _strike(self, keys: "tuple[str, ...]") -> None:
        quarantined_now = False
        with self._cond:
            for key in keys:
                strikes = self._strikes.get(key, 0) + 1
                self._strikes[key] = strikes
                self._strikes.move_to_end(key)
                while len(self._strikes) > 4 * self.config.quarantine_capacity:
                    self._strikes.popitem(last=False)
                if (
                    strikes >= self.config.poison_threshold
                    and key not in self._quarantined
                ):
                    self._quarantined[key] = (
                        f"{strikes} worker deaths attributed to this request"
                    )
                    while len(self._quarantined) > self.config.quarantine_capacity:
                        self._quarantined.popitem(last=False)
                    quarantined_now = True
        if quarantined_now:
            obs.counter("serve.procpool.quarantined").inc()
            plan = faults.active_plan()
            if plan is not None:
                plan.note_detected("poison-request")
                plan.note_recovered("poison-request")

    def is_quarantined(self, key: "str | None") -> bool:
        """Whether ``key`` is a quarantined poison-request key."""
        if key is None:
            return False
        with self._cond:
            return key in self._quarantined

    def quarantine_size(self) -> int:
        """Number of keys currently quarantined."""
        with self._cond:
            return len(self._quarantined)

    # ------------------------------------------------------------------
    # Memory pressure
    # ------------------------------------------------------------------
    def total_rss_bytes(self) -> int:
        """Parent + live-worker resident set, in bytes."""
        total = rss_bytes()
        with self._cond:
            pids = [
                s.proc.pid
                for s in self._slots.values()
                if not s.dead and s.proc.is_alive()
            ]
        for pid in pids:
            total += rss_bytes(pid)
        return total

    def memory_pressure(self) -> bool:
        """Whether admission should shed on pool-wide memory pressure."""
        highwater = self.config.memory_highwater_bytes
        if highwater is None:
            return False
        pressured = self.total_rss_bytes() >= highwater
        if pressured:
            obs.counter("serve.procpool.memory_pressure").inc()
        return pressured

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _acquire_slot(self, job: _Job, deadline: "float | None") -> _Slot:
        with self._cond:
            while True:
                if self._closed:
                    raise PoolError("pool is closed")
                if self.supervisor.exhausted:
                    raise WorkerCrashError(
                        "worker pool exhausted (restart budget spent)",
                        reason="exhausted",
                    )
                for slot in self._slots.values():
                    # A slot marked for death (reaper or segment flush)
                    # may still look alive for a few ms; handing it a
                    # job would fail that job for nothing.
                    if slot.dead or slot.job is not None:
                        continue
                    if slot.kill_reason is not None:
                        continue
                    if not slot.proc.is_alive():
                        continue
                    slot.job = job
                    return slot
                if deadline is not None and time.monotonic() >= deadline:
                    raise PoolError(
                        "no idle process worker within the batch budget"
                    )
                self._cond.wait(timeout=self.config.heartbeat_interval)

    def execute(
        self,
        matrix: CSRMatrix,
        stacked: np.ndarray,
        *,
        keys: "tuple[str, ...]" = (),
        timeout: "float | None" = None,
    ) -> ProcResult:
        """Run ``matrix @ stacked`` on a worker subprocess.

        Args:
            matrix: Sparse operand; published to (or reused from) the
                shared-segment cache — never serialized per request.
            stacked: Column-stacked dense operands of the batch (the
                only per-request payload on the pipe).
            keys: Poison keys of the batch's members (see
                :func:`poison_key`); worker deaths strike them and a
                quarantined key fails fast with
                :class:`QuarantinedError`.
            timeout: Batch budget in seconds.  Unlike the thread tier's
                ``call_with_timeout`` — which can only abandon — the
                budget here is enforced by the reaper SIGKILLing the
                worker, so a hung batch *terminates*.

        Raises:
            QuarantinedError: A member's content is quarantined.
            WorkerCrashError: The worker died mid-batch (killed, hung
                past budget, RSS guard) or the pool is exhausted.
            PoolError: Transport/execution errors (terminal ``error``).

        On success the call attributes the worker-reported kernel time
        to the ``kernel`` request-trace stage and the remaining wall
        time (pickle, pipe, wakeups) to ``ipc`` for every active
        request context.
        """
        for key in keys:
            if self.is_quarantined(key):
                raise QuarantinedError(
                    "request content is quarantined after repeatedly "
                    "killing workers"
                )
        started = time.monotonic()
        deadline = started + timeout if timeout is not None else None
        budget = min(
            timeout if timeout is not None else self.config.hang_timeout,
            self.config.hang_timeout,
        )
        segment = self.segment_for(matrix)
        out_block: "shared_memory.SharedMemory | None" = None
        shm_io = None
        out_shape = (matrix.n_rows, int(stacked.shape[1]))
        if self.config.result_transport == "shm":
            # One pool-owned block per in-flight call carries both the
            # staged dense operand and the worker's result, reused
            # across requests so its pages stay faulted in; a retried
            # attempt reuses it (same matrix, same operand), and the
            # worker only ever attaches — the pool keeps ownership.
            stacked = np.ascontiguousarray(stacked, dtype=np.float64)
            out_offset = (stacked.nbytes + 63) & ~63
            out_nbytes = out_shape[0] * out_shape[1] * 8
            out_block = self._out_acquire(max(1, out_offset + out_nbytes))
            staged = np.ndarray(
                stacked.shape, dtype=np.float64, buffer=out_block.buf
            )
            staged[...] = stacked
            del staged
            shm_io = (out_block.name, stacked.shape, out_shape, out_offset)
            stacked = None  # metadata-only exec message
        try:
            return self._execute_attempts(
                matrix, stacked, segment, keys, started, deadline, budget,
                out_block, out_shape, shm_io,
            )
        except BaseException:
            if out_block is not None:
                # A worker SIGKILLed mid-write may still hold a mapping;
                # never recycle a block a dying writer might touch.
                self._out_discard(out_block)
            raise

    def _out_acquire(self, nbytes: int) -> shared_memory.SharedMemory:
        """Pop a warm output block of at least ``nbytes`` (or create)."""
        with self._out_lock:
            for index, block in enumerate(self._out_free):
                if block.size >= nbytes:
                    return self._out_free.pop(index)
        block = shared_memory.SharedMemory(create=True, size=nbytes)
        with self._out_lock:
            self._out_all[block.name] = block
        return block

    def _out_release(self, block: shared_memory.SharedMemory) -> None:
        """Return a block to the warm free list (bounded by pool width)."""
        overflow = None
        with self._out_lock:
            if block.name not in self._out_all:
                return  # pool closed meanwhile; block already unlinked
            if len(self._out_free) >= self.config.n_workers + 2:
                overflow = block
                del self._out_all[block.name]
            else:
                self._out_free.append(block)
        if overflow is not None:
            _quiet_close(overflow)
            try:
                overflow.unlink()
            except FileNotFoundError:  # pragma: no cover - defensive
                pass

    def _out_discard(self, block: shared_memory.SharedMemory) -> None:
        """Unlink a block that must not be recycled."""
        with self._out_lock:
            self._out_all.pop(block.name, None)
        _quiet_close(block)
        try:
            block.unlink()
        except FileNotFoundError:  # pragma: no cover - defensive
            pass

    def _execute_attempts(
        self,
        matrix: CSRMatrix,
        stacked: np.ndarray,
        segment,
        keys: "tuple[str, ...]",
        started: float,
        deadline: "float | None",
        budget: float,
        out_block: "shared_memory.SharedMemory | None",
        out_shape: "tuple[int, int]",
        shm_io: "tuple | None" = None,
    ) -> ProcResult:
        """Acquire/send/wait attempt loop behind :meth:`execute`."""
        attempts = 0
        while True:
            attempts += 1
            with self._cond:
                self._jobs += 1
                job = _Job(job_id=self._jobs, keys=tuple(keys))
            slot = self._acquire_slot(job, deadline)
            plan = faults.active_plan()
            fault = plan.proc_fault() if plan is not None else None
            delay_seconds = (
                plan.delay_proc_seconds if plan is not None else 0.0
            )
            with self._cond:
                slot.busy_deadline = time.monotonic() + budget
            try:
                slot.conn.send(
                    ("exec", job.job_id, segment.meta, stacked, fault,
                     delay_seconds, shm_io)
                )
            except (BrokenPipeError, OSError):
                # Worker died between acquire and send; its death path
                # respawns it — just try another slot.
                with self._cond:
                    if slot.job is job:
                        slot.job = None
                        slot.busy_deadline = None
                if deadline is not None and time.monotonic() >= deadline:
                    raise WorkerCrashError(
                        "worker died before accepting the batch"
                    ) from None
                continue
            # The reaper guarantees termination (SIGKILL past budget),
            # so this wait always ends; the slack covers reap + EOF
            # delivery.
            job.event.wait(budget + 10.0 * self.config.heartbeat_interval + 5.0)
            if job.result is not None:
                if out_block is not None and job.result.output is None:
                    job.result.output = np.ndarray(
                        out_shape,
                        dtype=np.float64,
                        buffer=out_block.buf,
                        offset=shm_io[3],
                    )
                    job.result._release_cb = (
                        lambda block=out_block: self._out_release(block)
                    )
                wall = time.monotonic() - started
                job.result.ipc_seconds = max(
                    0.0, wall - job.result.kernel_seconds
                )
                rtrace.attribute("kernel", job.result.kernel_seconds)
                rtrace.attribute("ipc", job.result.ipc_seconds)
                obs.histogram("serve.procpool.ipc_seconds").observe(
                    job.result.ipc_seconds
                )
                return job.result
            if job.error is not None:
                kind, message = job.error
                if kind == "segment_corrupt":
                    self._republish_after_corruption(matrix, segment.meta.name)
                    if attempts <= 2:
                        segment = self.segment_for(matrix)
                        continue
                    raise PoolError(
                        f"segment corrupt after republish: {message}"
                    )
                raise PoolError(f"worker execution error: {message}")
            reason = job.crash_reason or "hang-timeout"
            if reason == "segment-flush" and attempts <= 2:
                # The worker was killed to flush stale attach caches
                # after a corrupt segment — not this request's fault;
                # re-resolve the segment and run it elsewhere.
                segment = self.segment_for(matrix)
                continue
            raise WorkerCrashError(
                f"worker crashed mid-batch ({reason})", reason=reason
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def heartbeat_kills_recent(self, window_seconds: float) -> int:
        """Workers SIGKILLed for missed heartbeats in the window."""
        cutoff = time.monotonic() - window_seconds
        with self._cond:
            return sum(1 for at in self._heartbeat_kill_times if at >= cutoff)

    def snapshot(self) -> dict:
        """Machine-readable pool state for health reports and benches."""
        supervisor = self.supervisor.snapshot()
        with self._cond:
            kills = dict(self.kills)
            quarantine = {
                "active": len(self._quarantined),
                "threshold": self.config.poison_threshold,
                "strikes": sum(self._strikes.values()),
            }
            executed = self.executed
            max_copied = self.max_request_copied_bytes
            idle = sum(
                1
                for s in self._slots.values()
                if s.job is None and not s.dead
            )
        with self._seg_lock:
            segments = {
                "active": len(self._segments),
                "republished": self.republished,
            }
        highwater = self.config.memory_highwater_bytes
        total_rss = self.total_rss_bytes()
        return {
            "isolation": "process",
            "supervisor": supervisor,
            "idle_workers": idle,
            "executed": executed,
            "kills": kills,
            "heartbeat_kills_recent": self.heartbeat_kills_recent(30.0),
            "quarantine": quarantine,
            "segments": segments,
            "memory": {
                "total_rss_bytes": total_rss,
                "highwater_bytes": highwater,
                "worker_limit_bytes": self.config.worker_rss_limit_bytes,
                "pressure": (
                    highwater is not None and total_rss >= highwater
                ),
            },
            "zero_copy": {
                "per_request_graph_bytes_copied": max_copied,
            },
        }
