"""Process-wide, content-addressed merge-path plan cache.

Serving amortizes scheduling the way the paper's *offline* mode does
(Section III-D), but across requests from many clients: the first request
against a graph pays for scheduling, every later request — from any
worker thread — reuses the plan.  Keys are content fingerprints of the
CSR structure (:meth:`CSRMatrix.fingerprint`), never ``id()``, so two
loads of the same graph share one plan and a recycled object address can
never alias a different matrix.  A hit from a same-structure matrix with
*different values* is rebound to the requesting matrix
(:meth:`CompiledPlan.rebind`) before it is returned, so a cached plan
never computes with another matrix's values.

A cached entry is a :class:`CompiledPlan`, not just a schedule: the
schedule's write segments and per-non-zero segment ids are materialized
once at build time, so the cached execution path skips both the
binary-search scheduling *and* the segment flattening that
:func:`repro.core.spmm.execute_vectorized` redoes per call.

The cache is thread-safe and LRU-bounded both by entry count and by the
approximate bytes its plans pin, and it publishes hit/miss/eviction
counters plus entry/byte gauges on ``repro.obs``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from repro import obs
from repro.obs import rtrace
from repro.core.schedule import MergePathSchedule, schedule_for_cost
from repro.core.spmm import (
    _CHUNK_NNZ,
    _inject_segment_faults,
    WriteSegments,
    write_segments,
)
from repro.core.thread_mapping import MIN_THREADS, default_merge_path_cost
from repro.formats import CSRMatrix
from repro.resilience import faults


def _arrays_nbytes(obj) -> int:
    """Summed ``nbytes`` of every ndarray attribute of ``obj``."""
    return sum(
        value.nbytes
        for value in vars(obj).values()
        if isinstance(value, np.ndarray)
    )


@dataclass(frozen=True)
class CompiledPlan:
    """A merge-path schedule compiled for repeated serving execution.

    Attributes:
        schedule: The merge-path decomposition (reused by the threaded
            backend and the oracles).
        segments: The schedule's flattened write segments.
        segment_ids: Segment id of every non-zero (length ``nnz``).
        cost: Merge-path cost the plan was built for.
        min_threads: Small-graph thread floor the plan was built for.
    """

    schedule: MergePathSchedule
    segments: WriteSegments = field(repr=False)
    segment_ids: np.ndarray = field(repr=False)
    cost: int = 0
    min_threads: int = MIN_THREADS

    @property
    def matrix(self) -> CSRMatrix:
        """The matrix this plan was compiled against."""
        return self.schedule.matrix

    @property
    def nbytes(self) -> int:
        """Approximate resident bytes (excluding the matrix itself)."""
        return (
            _arrays_nbytes(self.schedule)
            + _arrays_nbytes(self.segments)
            + self.segment_ids.nbytes
        )

    def rebind(self, matrix: CSRMatrix) -> "CompiledPlan":
        """This plan bound to ``matrix``'s values.

        Plans are shared structurally, but :meth:`execute` computes with
        ``self.matrix.values``; rebinding swaps in the caller's matrix
        (sharing every precomputed array) so a cached plan never computes
        with another same-structure matrix's values.  Returns ``self``
        when ``matrix`` already carries the same values.
        """
        schedule = self.schedule.rebind(matrix)
        if schedule is self.schedule:
            return self
        return replace(self, schedule=schedule)

    def execute(self, dense: np.ndarray) -> np.ndarray:
        """The cached fast path: segment scatter-adds, no re-scheduling.

        Semantically identical to
        :func:`repro.core.spmm.execute_vectorized` (including honoring an
        active :class:`repro.resilience.faults.FaultPlan`), but reuses
        the precomputed segments and segment ids.
        """
        matrix = self.matrix
        dense = np.asarray(dense, dtype=np.float64)
        if dense.shape[0] != matrix.n_cols:
            raise ValueError(
                f"dimension mismatch: {matrix.shape} @ {dense.shape}"
            )
        segments = self.segments
        dim = dense.shape[1]
        seg_sums = np.zeros((segments.n_segments, dim), dtype=np.float64)
        cp, values = matrix.column_indices, matrix.values
        for lo in range(0, matrix.nnz, _CHUNK_NNZ):
            hi = min(lo + _CHUNK_NNZ, matrix.nnz)
            partial = values[lo:hi, None] * dense[cp[lo:hi]]
            np.add.at(seg_sums, self.segment_ids[lo:hi], partial)

        plan = faults.active_plan()
        atomic_applied = segments.atomic
        if plan is not None:
            dropped = _inject_segment_faults(plan, seg_sums, segments)
            atomic_applied = segments.atomic & ~dropped

        output = np.zeros((matrix.n_rows, dim), dtype=np.float64)
        regular = ~segments.atomic
        output[segments.rows[regular]] = seg_sums[regular]
        np.add.at(
            output, segments.rows[atomic_applied], seg_sums[atomic_applied]
        )
        return output


@dataclass(frozen=True)
class RepairedPlan:
    """A cached base-epoch plan patched for a delta snapshot.

    A true incremental merge-path recompile is impossible — the
    diagonals are global functions of ``nnz`` — so repair is honest
    about what *can* be incremental: :meth:`execute` runs the cached
    base plan unchanged, then overwrites exactly the dirty rows'
    outputs from the snapshot's own rows.  Cost over the base plan is
    ``O(sum(degree(dirty)) * dim)``: proportional to the delta, not the
    graph.

    Duck-compatible with :class:`CompiledPlan` for ``execute``/
    ``rebind``/``nbytes``/``matrix``; it deliberately has **no**
    ``schedule`` attribute (the base schedule predates the delta and
    must not be executed with patched expectations), which backends
    detect with ``getattr(plan, "schedule", None)``.

    Attributes:
        base_plan: The compiled plan of the snapshot's base epoch.
        matrix: The snapshot matrix (current epoch structure + values).
        dirty_rows: Rows whose output the repair recomputes.
        repair_cols: Column indices of the dirty rows' non-zeros,
            flattened in dirty-row order.
        repair_value_idx: Gather indices into ``matrix.values`` for the
            same non-zeros (kept so :meth:`rebind` can re-gather).
        repair_values: ``matrix.values[repair_value_idx]``.
        repair_segment_ids: Position of each repair non-zero's row
            inside ``dirty_rows``.
    """

    base_plan: CompiledPlan
    matrix: CSRMatrix = field(repr=False)
    dirty_rows: np.ndarray = field(repr=False)
    repair_cols: np.ndarray = field(repr=False)
    repair_value_idx: np.ndarray = field(repr=False)
    repair_values: np.ndarray = field(repr=False)
    repair_segment_ids: np.ndarray = field(repr=False)
    cost: int = 0
    min_threads: int = MIN_THREADS

    @property
    def nbytes(self) -> int:
        """Bytes of the repair arrays (the base plan is billed under its
        own cache key, never twice)."""
        return (
            self.dirty_rows.nbytes
            + self.repair_cols.nbytes
            + self.repair_value_idx.nbytes
            + self.repair_values.nbytes
            + self.repair_segment_ids.nbytes
        )

    @property
    def repaired_segments(self) -> int:
        """Rows recomputed instead of recompiled."""
        return len(self.dirty_rows)

    def rebind(self, matrix: CSRMatrix) -> "RepairedPlan":
        """This repair bound to ``matrix``'s values (base plan untouched)."""
        if matrix is self.matrix or matrix.fingerprint(
            include_values=True
        ) == self.matrix.fingerprint(include_values=True):
            return self
        return replace(
            self,
            matrix=matrix,
            repair_values=matrix.values[self.repair_value_idx],
        )

    def execute(self, dense: np.ndarray) -> np.ndarray:
        """Base-plan execution plus O(|delta| * dim) dirty-row patching."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.shape[0] != self.matrix.n_cols:
            raise ValueError(
                f"dimension mismatch: {self.matrix.shape} @ {dense.shape}"
            )
        output = self.base_plan.execute(dense)
        if len(self.dirty_rows) == 0:
            return output
        sums = np.zeros((len(self.dirty_rows), dense.shape[1]), dtype=np.float64)
        partial = self.repair_values[:, None] * dense[self.repair_cols]
        np.add.at(sums, self.repair_segment_ids, partial)
        output[self.dirty_rows] = sums
        return output


def repair_plan(
    base_plan: CompiledPlan,
    snapshot,
    *,
    cost: int,
    min_threads: int = MIN_THREADS,
) -> RepairedPlan:
    """Patch ``base_plan`` for ``snapshot`` (a
    :class:`repro.graphs.delta.GraphSnapshot`) instead of recompiling.

    Gathers the snapshot's dirty rows once into flat repair arrays; the
    base plan's segments and segment ids are reused as-is.
    """
    matrix = snapshot.matrix
    dirty = np.ascontiguousarray(snapshot.dirty_rows, dtype=np.int64)
    starts = matrix.row_pointers[dirty]
    lengths = matrix.row_pointers[dirty + 1] - starts
    total = int(lengths.sum())
    value_idx = np.empty(total, dtype=np.int64)
    cursor = 0
    for start, length in zip(starts.tolist(), lengths.tolist()):
        value_idx[cursor : cursor + length] = np.arange(
            start, start + length, dtype=np.int64
        )
        cursor += length
    segment_ids = np.repeat(np.arange(len(dirty), dtype=np.int64), lengths)
    return RepairedPlan(
        base_plan=base_plan,
        matrix=matrix,
        dirty_rows=dirty,
        repair_cols=matrix.column_indices[value_idx],
        repair_value_idx=value_idx,
        repair_values=matrix.values[value_idx],
        repair_segment_ids=segment_ids,
        cost=cost,
        min_threads=min_threads,
    )


def compile_plan(
    matrix: CSRMatrix, cost: int, min_threads: int = MIN_THREADS
) -> CompiledPlan:
    """Build and compile a merge-path plan for ``matrix``."""
    schedule = schedule_for_cost(matrix, cost, min_threads=min_threads)
    segments = write_segments(schedule)
    segment_ids = np.repeat(
        np.arange(segments.n_segments), segments.lengths
    )
    return CompiledPlan(
        schedule=schedule,
        segments=segments,
        segment_ids=segment_ids,
        cost=cost,
        min_threads=min_threads,
    )


@dataclass(frozen=True)
class PlanCacheStats:
    """A point-in-time snapshot of plan-cache effectiveness."""

    hits: int
    misses: int
    evictions: int
    entries: int
    bytes: int
    # Live-graph extensions: misses served by patching a cached base
    # plan instead of a full merge-path recompile, and entries dropped
    # by precise epoch retirement (never a global flush).
    repairs: int = 0
    repaired_rows: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups (0.0 when the cache was never hit)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        """JSON-ready form for run records."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "bytes": self.bytes,
            "hit_rate": self.hit_rate,
            "repairs": self.repairs,
            "repaired_rows": self.repaired_rows,
            "invalidations": self.invalidations,
        }


class PlanCache:
    """Thread-safe LRU cache of compiled plans keyed by content.

    Args:
        capacity: Maximum cached plans; least-recently-used entries are
            evicted beyond it.
        max_bytes: Optional bound on the summed :attr:`CompiledPlan.nbytes`
            of resident plans; eviction drops LRU entries until the
            budget holds (the most recent plan is always kept).

    A plan build runs under the cache lock, so concurrent workers
    requesting the same key perform exactly one build and share the
    resulting plan object.

    Live graphs: :meth:`note_snapshot` registers a
    :class:`~repro.graphs.delta.GraphSnapshot` under its fingerprint;
    a later miss on that fingerprint whose base plan is cached — and
    whose dirty fraction is at most ``repair_max_fraction`` — is served
    by :func:`repair_plan` (O(|delta|) patching) instead of a full
    merge-path recompile.  :meth:`invalidate_fingerprint` retires one
    epoch's keys precisely.
    """

    def __init__(
        self,
        capacity: int = 256,
        max_bytes: "int | None" = None,
        *,
        repair_max_fraction: float = 0.25,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if not 0.0 <= repair_max_fraction <= 1.0:
            raise ValueError(
                "repair_max_fraction must be in [0, 1], "
                f"got {repair_max_fraction}"
            )
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.repair_max_fraction = repair_max_fraction
        self._lock = threading.RLock()
        self._plans: "OrderedDict[tuple[str, int, int], CompiledPlan]" = (
            OrderedDict()
        )
        # fingerprint -> GraphSnapshot, bounded alongside the plans.
        self._snapshots: "OrderedDict[str, object]" = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._repairs = 0
        self._repaired_rows = 0
        self._invalidations = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(
        self,
        matrix: CSRMatrix,
        cost: "int | None" = None,
        *,
        dim: "int | None" = None,
        min_threads: int = MIN_THREADS,
    ) -> CompiledPlan:
        """Return the cached plan for ``matrix``, building it on miss.

        Args:
            matrix: Sparse input whose structure keys the plan.
            cost: Merge-path cost (merge items per thread); when omitted
                it defaults to the paper's tuned value for ``dim``.
            dim: Dense-operand width used to derive the default cost;
                required when ``cost`` is omitted.
            min_threads: Small-graph thread floor (Section III-C).
        """
        if cost is None:
            if dim is None:
                raise ValueError("pass either cost= or dim=")
            cost = default_merge_path_cost(dim)
        key = (matrix.fingerprint(), cost, min_threads)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self._hits += 1
                obs.counter("serve.plancache.hits").inc()
                rtrace.count("plan_cache_hit")
                # A structural hit may come from a same-structure matrix
                # with different values; rebind so the plan executes with
                # the *caller's* values.
                return plan.rebind(matrix)
            self._misses += 1
            obs.counter("serve.plancache.misses").inc()
            plan = self._try_repair_locked(key)
            if plan is None:
                rtrace.count("plan_compile")
                with obs.span(
                    "serve.plancache.build", cost=cost, nnz=matrix.nnz
                ):
                    with rtrace.stage("plan_compile"):
                        plan = self._build(matrix, cost, min_threads)
            self._plans[key] = plan
            self._bytes += plan.nbytes
            self._evict_locked()
            self._publish_locked()
            return plan.rebind(matrix)

    def _build(
        self, matrix: CSRMatrix, cost: int, min_threads: int
    ) -> CompiledPlan:
        """Compile a plan on a miss; runs under the cache lock.

        Overridable seam for the update-race chaos suite, which injects
        graph updates *while a compile is in progress* to prove the lock
        ordering (service condition -> epoch manager -> caches, with the
        cache lock reentrant) cannot tear a plan or deadlock.
        """
        return compile_plan(matrix, cost, min_threads=min_threads)

    def _try_repair_locked(self, key: "tuple[str, int, int]"):
        """Serve a miss by patching a cached base plan, if possible.

        Requires a registered snapshot for the missed fingerprint whose
        base plan (same cost/min_threads) is resident and whose dirty
        fraction is within ``repair_max_fraction``; otherwise the caller
        falls back to a full compile.
        """
        fingerprint, cost, min_threads = key
        snapshot = self._snapshots.get(fingerprint)
        if snapshot is None or len(snapshot.dirty_rows) == 0:
            return None
        if snapshot.dirty_fraction > self.repair_max_fraction:
            return None
        base_key = (snapshot.base_fingerprint, cost, min_threads)
        base_plan = self._plans.get(base_key)
        if not isinstance(base_plan, CompiledPlan):
            return None
        # Repairing keeps the base hot: every live epoch leans on it.
        self._plans.move_to_end(base_key)
        rtrace.count("plan_repair")
        with obs.span(
            "serve.plancache.repair",
            dirty_rows=len(snapshot.dirty_rows),
            cost=cost,
        ):
            with rtrace.stage("plan_repair"):
                plan = repair_plan(
                    base_plan, snapshot, cost=cost, min_threads=min_threads
                )
        self._repairs += 1
        self._repaired_rows += len(snapshot.dirty_rows)
        obs.counter("serve.plancache.repairs").inc()
        obs.counter("serve.plancache.repaired_rows").inc(
            len(snapshot.dirty_rows)
        )
        return plan

    # ------------------------------------------------------------------
    # Live-graph epochs
    # ------------------------------------------------------------------
    def note_snapshot(self, snapshot) -> None:
        """Register a :class:`~repro.graphs.delta.GraphSnapshot`.

        Misses on the snapshot's fingerprint become repair candidates
        (see :meth:`get`).  The registry is bounded alongside the plan
        table, dropping oldest-registered snapshots first.
        """
        with self._lock:
            self._snapshots[snapshot.fingerprint] = snapshot
            self._snapshots.move_to_end(snapshot.fingerprint)
            while len(self._snapshots) > self.capacity:
                self._snapshots.popitem(last=False)

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every plan (and snapshot) keyed by ``fingerprint``.

        The epoch-retirement hook: live-graph fingerprints are
        version-precise, so this removes exactly one retired epoch's
        entries — entries of live epochs (including the shared base
        plan other epochs repair from) are untouched.  Returns the
        number of plans dropped.
        """
        with self._lock:
            stale = [key for key in self._plans if key[0] == fingerprint]
            for key in stale:
                plan = self._plans.pop(key)
                self._bytes -= plan.nbytes
            self._snapshots.pop(fingerprint, None)
            if stale:
                self._invalidations += len(stale)
                obs.counter("serve.plancache.invalidations").inc(len(stale))
                self._publish_locked()
            return len(stale)

    def _evict_locked(self) -> None:
        while len(self._plans) > self.capacity or (
            self.max_bytes is not None
            and self._bytes > self.max_bytes
            and len(self._plans) > 1
        ):
            _, evicted = self._plans.popitem(last=False)
            self._bytes -= evicted.nbytes
            self._evictions += 1
            obs.counter("serve.plancache.evictions").inc()

    def _publish_locked(self) -> None:
        if obs.enabled():
            obs.gauge("serve.plancache.entries").set(float(len(self._plans)))
            obs.gauge("serve.plancache.bytes").set(float(self._bytes))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> PlanCacheStats:
        """Snapshot the cache's hit/miss/eviction/occupancy counters."""
        with self._lock:
            return PlanCacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._plans),
                bytes=self._bytes,
                repairs=self._repairs,
                repaired_rows=self._repaired_rows,
                invalidations=self._invalidations,
            )

    def fingerprints(self) -> "set[str]":
        """Distinct fingerprints currently cached (for retirement tests)."""
        with self._lock:
            return {key[0] for key in self._plans}

    def clear(self) -> None:
        """Drop all plans and reset counters."""
        with self._lock:
            self._plans.clear()
            self._snapshots.clear()
            self._bytes = 0
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._repairs = 0
            self._repaired_rows = 0
            self._invalidations = 0
            self._publish_locked()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)


# ----------------------------------------------------------------------
# Process-wide default instance
# ----------------------------------------------------------------------
_default_cache = PlanCache()
_default_lock = threading.Lock()


def get_plan_cache() -> PlanCache:
    """The process-wide plan cache shared by serving components."""
    return _default_cache


def set_plan_cache(cache: PlanCache) -> PlanCache:
    """Install a new process-wide plan cache; returns the previous one."""
    global _default_cache
    with _default_lock:
        previous, _default_cache = _default_cache, cache
    return previous
