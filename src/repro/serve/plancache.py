"""Process-wide, content-addressed merge-path plan cache.

Serving amortizes scheduling the way the paper's *offline* mode does
(Section III-D), but across requests from many clients: the first request
against a graph pays for scheduling, every later request — from any
worker thread — reuses the plan.  Keys are content fingerprints of the
CSR structure (:meth:`CSRMatrix.fingerprint`), never ``id()``, so two
loads of the same graph share one plan and a recycled object address can
never alias a different matrix.  A hit from a same-structure matrix with
*different values* is rebound to the requesting matrix
(:meth:`CompiledPlan.rebind`) before it is returned, so a cached plan
never computes with another matrix's values.

A cached entry is a :class:`CompiledPlan`, not just a schedule: the
schedule's write segments and per-non-zero segment ids are materialized
once at build time, so the cached execution path skips both the
binary-search scheduling *and* the segment flattening that
:func:`repro.core.spmm.execute_vectorized` redoes per call.

The cache is thread-safe and LRU-bounded both by entry count and by the
approximate bytes its plans pin, and it publishes hit/miss/eviction
counters plus entry/byte gauges on ``repro.obs``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from repro import obs
from repro.obs import rtrace
from repro.core.schedule import MergePathSchedule, schedule_for_cost
from repro.core.spmm import (
    _CHUNK_NNZ,
    _inject_segment_faults,
    WriteSegments,
    write_segments,
)
from repro.core.thread_mapping import MIN_THREADS, default_merge_path_cost
from repro.formats import CSRMatrix
from repro.resilience import faults


def _arrays_nbytes(obj) -> int:
    """Summed ``nbytes`` of every ndarray attribute of ``obj``."""
    return sum(
        value.nbytes
        for value in vars(obj).values()
        if isinstance(value, np.ndarray)
    )


@dataclass(frozen=True)
class CompiledPlan:
    """A merge-path schedule compiled for repeated serving execution.

    Attributes:
        schedule: The merge-path decomposition (reused by the threaded
            backend and the oracles).
        segments: The schedule's flattened write segments.
        segment_ids: Segment id of every non-zero (length ``nnz``).
        cost: Merge-path cost the plan was built for.
        min_threads: Small-graph thread floor the plan was built for.
    """

    schedule: MergePathSchedule
    segments: WriteSegments = field(repr=False)
    segment_ids: np.ndarray = field(repr=False)
    cost: int = 0
    min_threads: int = MIN_THREADS

    @property
    def matrix(self) -> CSRMatrix:
        return self.schedule.matrix

    @property
    def nbytes(self) -> int:
        """Approximate resident bytes (excluding the matrix itself)."""
        return (
            _arrays_nbytes(self.schedule)
            + _arrays_nbytes(self.segments)
            + self.segment_ids.nbytes
        )

    def rebind(self, matrix: CSRMatrix) -> "CompiledPlan":
        """This plan bound to ``matrix``'s values.

        Plans are shared structurally, but :meth:`execute` computes with
        ``self.matrix.values``; rebinding swaps in the caller's matrix
        (sharing every precomputed array) so a cached plan never computes
        with another same-structure matrix's values.  Returns ``self``
        when ``matrix`` already carries the same values.
        """
        schedule = self.schedule.rebind(matrix)
        if schedule is self.schedule:
            return self
        return replace(self, schedule=schedule)

    def execute(self, dense: np.ndarray) -> np.ndarray:
        """The cached fast path: segment scatter-adds, no re-scheduling.

        Semantically identical to
        :func:`repro.core.spmm.execute_vectorized` (including honoring an
        active :class:`repro.resilience.faults.FaultPlan`), but reuses
        the precomputed segments and segment ids.
        """
        matrix = self.matrix
        dense = np.asarray(dense, dtype=np.float64)
        if dense.shape[0] != matrix.n_cols:
            raise ValueError(
                f"dimension mismatch: {matrix.shape} @ {dense.shape}"
            )
        segments = self.segments
        dim = dense.shape[1]
        seg_sums = np.zeros((segments.n_segments, dim), dtype=np.float64)
        cp, values = matrix.column_indices, matrix.values
        for lo in range(0, matrix.nnz, _CHUNK_NNZ):
            hi = min(lo + _CHUNK_NNZ, matrix.nnz)
            partial = values[lo:hi, None] * dense[cp[lo:hi]]
            np.add.at(seg_sums, self.segment_ids[lo:hi], partial)

        plan = faults.active_plan()
        atomic_applied = segments.atomic
        if plan is not None:
            dropped = _inject_segment_faults(plan, seg_sums, segments)
            atomic_applied = segments.atomic & ~dropped

        output = np.zeros((matrix.n_rows, dim), dtype=np.float64)
        regular = ~segments.atomic
        output[segments.rows[regular]] = seg_sums[regular]
        np.add.at(
            output, segments.rows[atomic_applied], seg_sums[atomic_applied]
        )
        return output


def compile_plan(
    matrix: CSRMatrix, cost: int, min_threads: int = MIN_THREADS
) -> CompiledPlan:
    """Build and compile a merge-path plan for ``matrix``."""
    schedule = schedule_for_cost(matrix, cost, min_threads=min_threads)
    segments = write_segments(schedule)
    segment_ids = np.repeat(
        np.arange(segments.n_segments), segments.lengths
    )
    return CompiledPlan(
        schedule=schedule,
        segments=segments,
        segment_ids=segment_ids,
        cost=cost,
        min_threads=min_threads,
    )


@dataclass(frozen=True)
class PlanCacheStats:
    """A point-in-time snapshot of plan-cache effectiveness."""

    hits: int
    misses: int
    evictions: int
    entries: int
    bytes: int

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups (0.0 when the cache was never hit)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
            "bytes": self.bytes,
            "hit_rate": self.hit_rate,
        }


class PlanCache:
    """Thread-safe LRU cache of compiled plans keyed by content.

    Args:
        capacity: Maximum cached plans; least-recently-used entries are
            evicted beyond it.
        max_bytes: Optional bound on the summed :attr:`CompiledPlan.nbytes`
            of resident plans; eviction drops LRU entries until the
            budget holds (the most recent plan is always kept).

    A plan build runs under the cache lock, so concurrent workers
    requesting the same key perform exactly one build and share the
    resulting plan object.
    """

    def __init__(
        self, capacity: int = 256, max_bytes: "int | None" = None
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._lock = threading.RLock()
        self._plans: "OrderedDict[tuple[str, int, int], CompiledPlan]" = (
            OrderedDict()
        )
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(
        self,
        matrix: CSRMatrix,
        cost: "int | None" = None,
        *,
        dim: "int | None" = None,
        min_threads: int = MIN_THREADS,
    ) -> CompiledPlan:
        """Return the cached plan for ``matrix``, building it on miss.

        Args:
            matrix: Sparse input whose structure keys the plan.
            cost: Merge-path cost (merge items per thread); when omitted
                it defaults to the paper's tuned value for ``dim``.
            dim: Dense-operand width used to derive the default cost;
                required when ``cost`` is omitted.
            min_threads: Small-graph thread floor (Section III-C).
        """
        if cost is None:
            if dim is None:
                raise ValueError("pass either cost= or dim=")
            cost = default_merge_path_cost(dim)
        key = (matrix.fingerprint(), cost, min_threads)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self._hits += 1
                obs.counter("serve.plancache.hits").inc()
                rtrace.count("plan_cache_hit")
                # A structural hit may come from a same-structure matrix
                # with different values; rebind so the plan executes with
                # the *caller's* values.
                return plan.rebind(matrix)
            self._misses += 1
            obs.counter("serve.plancache.misses").inc()
            rtrace.count("plan_compile")
            with obs.span("serve.plancache.build", cost=cost, nnz=matrix.nnz):
                with rtrace.stage("plan_compile"):
                    plan = compile_plan(matrix, cost, min_threads=min_threads)
            self._plans[key] = plan
            self._bytes += plan.nbytes
            self._evict_locked()
            self._publish_locked()
            return plan

    def _evict_locked(self) -> None:
        while len(self._plans) > self.capacity or (
            self.max_bytes is not None
            and self._bytes > self.max_bytes
            and len(self._plans) > 1
        ):
            _, evicted = self._plans.popitem(last=False)
            self._bytes -= evicted.nbytes
            self._evictions += 1
            obs.counter("serve.plancache.evictions").inc()

    def _publish_locked(self) -> None:
        if obs.enabled():
            obs.gauge("serve.plancache.entries").set(float(len(self._plans)))
            obs.gauge("serve.plancache.bytes").set(float(self._bytes))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> PlanCacheStats:
        """Snapshot the cache's hit/miss/eviction/occupancy counters."""
        with self._lock:
            return PlanCacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._plans),
                bytes=self._bytes,
            )

    def clear(self) -> None:
        """Drop all plans and reset counters."""
        with self._lock:
            self._plans.clear()
            self._bytes = 0
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._publish_locked()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)


# ----------------------------------------------------------------------
# Process-wide default instance
# ----------------------------------------------------------------------
_default_cache = PlanCache()
_default_lock = threading.Lock()


def get_plan_cache() -> PlanCache:
    """The process-wide plan cache shared by serving components."""
    return _default_cache


def set_plan_cache(cache: PlanCache) -> PlanCache:
    """Install a new process-wide plan cache; returns the previous one."""
    global _default_cache
    with _default_lock:
        previous, _default_cache = _default_cache, cache
    return previous
