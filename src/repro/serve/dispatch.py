"""Adaptive SpMM backend dispatch: modeled prior + epsilon-greedy online.

The repo ships six executors with wildly different sweet spots (the point
of the paper's Figure 4, and of GE-SpMM/HC-SpMM-style kernel selection):
the vectorized and threaded merge-path executors, row-splitting,
serial-fix-up merge-path, GNNAdvisor neighbor grouping, and the
cuSPARSE-like selection library.  :class:`AdaptiveDispatcher` picks one
per ``(graph structure, feature dim)`` workload:

* the **prior** ranks backends by modeled kernel cycles from
  :func:`repro.gpu.kernels.kernel_time` — available before a single
  request has been served;
* **online refinement** is epsilon-greedy over measured per-backend
  latencies (EWMA), calibrated against the prior so never-measured
  backends compete on a common scale;
* any backend exception or output-oracle failure triggers a forced
  fallback to :func:`repro.resilience.oracles.verified_spmm`, so a
  dispatched request always returns a verified product;
* each backend sits behind a per-backend
  :class:`~repro.serve.guard.CircuitBreaker`: a backend that fails
  persistently is *tripped* out of the bandit arm set entirely (no
  request reaches it while its breaker is open), probed again after a
  cooldown, and re-admitted once the probes succeed.  When every breaker
  is open the dispatcher serves from the always-available
  **verified floor** (:func:`verified_spmm` under the name
  ``verified-floor``).

Everything above keys on content fingerprints, which assumes requests
revisit the same graphs.  Ego-sampled subgraphs violate that — every
request carries a one-shot fingerprint, so priors, bandit arms, and
plan caches would all be cold on every request.  For those,
``execute(..., prefer_class_tier=True)`` routes through the
:class:`~repro.sample.classtier.ClassTier` instead: no modeled prior,
no bandit, no per-fingerprint plan — the structure *class* picks the
executor.  The verified fallback still backstops the tier, so the
"always returns a verified product" contract is unchanged.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.obs import rtrace
from repro.baselines import (
    cusparse_like_spmm,
    gnnadvisor_spmm,
    merge_path_serial_spmm,
    row_splitting_spmm,
)
from repro.core.parallel import execute_parallel
from repro.formats import CSRMatrix
from repro.resilience.oracles import check_output, verified_spmm
from repro.serve.guard import BreakerConfig, CircuitBreaker
from repro.serve.plancache import PlanCache, get_plan_cache

BackendFn = Callable[[CSRMatrix, np.ndarray, PlanCache, int], np.ndarray]

# Reported as the backend name when every breaker is open and the
# verified fallback is the only executor left standing.
FLOOR_BACKEND = "verified-floor"


@dataclass(frozen=True)
class Backend:
    """One dispatchable SpMM executor.

    Attributes:
        name: Registry name (stable across runs; used in metrics).
        run: ``(matrix, dense, plan_cache, plan_dim) -> output`` executor.
            ``plan_dim`` is the *per-request* feature dimension, which may
            be narrower than ``dense`` when requests were batched
            column-wise — plans are keyed on it so batch size never
            fragments the plan cache.
        kernel: Timing-model kernel name used for the modeled prior
            (see :data:`repro.gpu.kernels.KERNELS`); ``None`` disables
            the prior for this backend.
    """

    name: str
    run: BackendFn = field(repr=False)
    kernel: "str | None" = None


def _run_vectorized(
    matrix: CSRMatrix, dense: np.ndarray, plans: PlanCache, plan_dim: int
) -> np.ndarray:
    return plans.get(matrix, dim=plan_dim).execute(dense)


def _run_threaded(
    matrix: CSRMatrix, dense: np.ndarray, plans: PlanCache, plan_dim: int
) -> np.ndarray:
    plan = plans.get(matrix, dim=plan_dim)
    schedule = getattr(plan, "schedule", None)
    if schedule is None:
        # A repaired plan (live-graph delta) has no single merge-path
        # schedule to thread over; its execute() is already the patched
        # fast path.
        return plan.execute(dense)
    return execute_parallel(schedule, dense, n_workers=4).output


def _baseline_threads(matrix: CSRMatrix) -> int:
    return max(1, min(256, matrix.n_rows))


def _run_row_splitting(
    matrix: CSRMatrix, dense: np.ndarray, plans: PlanCache, plan_dim: int
) -> np.ndarray:
    return row_splitting_spmm(matrix, dense, _baseline_threads(matrix))[0]


def _run_merge_path_serial(
    matrix: CSRMatrix, dense: np.ndarray, plans: PlanCache, plan_dim: int
) -> np.ndarray:
    return merge_path_serial_spmm(matrix, dense, _baseline_threads(matrix))[0]


def _run_gnnadvisor(
    matrix: CSRMatrix, dense: np.ndarray, plans: PlanCache, plan_dim: int
) -> np.ndarray:
    return gnnadvisor_spmm(matrix, dense)[0]


def _run_cusparse_like(
    matrix: CSRMatrix, dense: np.ndarray, plans: PlanCache, plan_dim: int
) -> np.ndarray:
    return cusparse_like_spmm(matrix, dense)[0]


def _run_engine(
    matrix: CSRMatrix, dense: np.ndarray, plans: PlanCache, plan_dim: int
) -> np.ndarray:
    # The engine keeps its own plan cache (flattened index arrays, not
    # CompiledPlan objects) and per-thread arenas; ``plans`` is unused.
    # Keyed on plan_dim like the others so batching never fragments it.
    from repro.engine.kernels import get_engine_plan_cache

    return get_engine_plan_cache().get(matrix, dim=plan_dim).execute(dense)


def default_backends() -> tuple[Backend, ...]:
    """The seven stock backends, in registration (tie-break) order."""
    return (
        Backend("vectorized", _run_vectorized, kernel="mergepath"),
        Backend("threaded", _run_threaded, kernel="mergepath"),
        Backend("row-splitting", _run_row_splitting, kernel="row-splitting"),
        Backend(
            "merge-path-serial",
            _run_merge_path_serial,
            kernel="merge-path-serial",
        ),
        Backend("gnnadvisor", _run_gnnadvisor, kernel="gnnadvisor"),
        Backend("cusparse-like", _run_cusparse_like, kernel="cusparse"),
        Backend("engine", _run_engine, kernel="mergepath"),
    )


@dataclass(frozen=True)
class DispatchResult:
    """Outcome of one dispatched SpMM.

    Attributes:
        output: The product (verified-fallback output when
            ``fallback_used``).
        backend: Name of the backend the dispatcher chose.
        fallback_used: Whether :func:`verified_spmm` produced the output.
        detected: Oracle/exception description that forced the fallback.
        latency_seconds: Measured wall time, including any fallback.
        explored: Whether this choice was an epsilon exploration.
    """

    output: np.ndarray
    backend: str
    fallback_used: bool
    detected: "str | None"
    latency_seconds: float
    explored: bool


class _ArmStats:
    __slots__ = ("count", "ewma")

    def __init__(self) -> None:
        self.count = 0
        self.ewma = 0.0


class AdaptiveDispatcher:
    """Epsilon-greedy backend selection seeded by the GPU timing model.

    Args:
        backends: Dispatchable executors; defaults to
            :func:`default_backends`.
        plan_cache: Shared plan cache handed to backends; defaults to the
            process-wide cache.
        epsilon: Exploration probability per choice.
        ewma_alpha: Weight of the newest latency sample in the running
            estimate.
        seed: Seed for the exploration RNG (pins the choice sequence).
        device: Modeled GPU for the prior; defaults to the paper's
            Quadro RTX 6000.
        max_entries: LRU bound on retained per-``(structure fingerprint,
            dim, backend)`` bandit arms and modeled priors.  A
            long-running service seeing an unbounded stream of distinct
            graphs would otherwise grow these maps without limit even
            though the plan cache itself is bounded; evicted workloads
            simply re-measure on their next appearance.
        breaker_config: Per-backend circuit-breaker thresholds; defaults
            to :class:`~repro.serve.guard.BreakerConfig`.
        breaker_clock: Monotonic clock handed to the breakers (test
            injection point for cooldown control).
        class_tier: Structure-class tier serving
            ``execute(prefer_class_tier=True)`` requests.  ``"auto"``
            (default) resolves the process-wide
            :func:`repro.sample.classtier.get_class_tier` lazily;
            ``None`` disables the tier (such requests fall back to the
            bandit path); a :class:`~repro.sample.classtier.ClassTier`
            instance pins one explicitly.

    All state is guarded by one lock; `choose`/`record`/`execute` are
    safe to call from concurrent serve workers.
    """

    def __init__(
        self,
        backends: "tuple[Backend, ...] | list[Backend] | None" = None,
        *,
        plan_cache: "PlanCache | None" = None,
        epsilon: float = 0.1,
        ewma_alpha: float = 0.3,
        seed: int = 0,
        device=None,
        max_entries: int = 4096,
        breaker_config: "BreakerConfig | None" = None,
        breaker_clock: Callable[[], float] = time.monotonic,
        class_tier="auto",
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.backends = (
            tuple(backends) if backends is not None else default_backends()
        )
        if not self.backends:
            raise ValueError("at least one backend is required")
        names = [b.name for b in self.backends]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate backend names: {names}")
        self.plan_cache = plan_cache if plan_cache is not None else get_plan_cache()
        self.epsilon = epsilon
        self.ewma_alpha = ewma_alpha
        self.max_entries = max_entries
        self._rng = np.random.default_rng(seed)
        self._device = device
        self._lock = threading.RLock()
        self._arms: "OrderedDict[tuple[str, int, str], _ArmStats]" = (
            OrderedDict()
        )
        self._priors: "OrderedDict[tuple[str, int, str], float]" = (
            OrderedDict()
        )
        self._class_tier = class_tier
        self.breaker_config = breaker_config or BreakerConfig()
        self._breakers = {
            backend.name: CircuitBreaker(
                backend.name, self.breaker_config, clock=breaker_clock
            )
            for backend in self.backends
        }

    # ------------------------------------------------------------------
    # Circuit breakers
    # ------------------------------------------------------------------
    def breaker(self, backend_name: str) -> CircuitBreaker:
        """The breaker guarding one backend (KeyError for unknown names)."""
        return self._breakers[backend_name]

    def breaker_states(self) -> "dict[str, str]":
        """Backend name -> breaker state, for health reports."""
        return {name: b.state for name, b in self._breakers.items()}

    def open_breakers(self) -> "list[str]":
        """Backends currently tripped out of the arm set."""
        return [
            name for name, b in self._breakers.items() if b.state == "open"
        ]

    # ------------------------------------------------------------------
    # Prior: modeled kernel cycles
    # ------------------------------------------------------------------
    def modeled_microseconds(
        self, matrix: CSRMatrix, dim: int, backend: Backend
    ) -> float:
        """Modeled latency prior for one backend (``inf`` when unmodeled).

        Memoized per ``(structure fingerprint, dim, backend)`` so the
        timing model runs once per workload, not once per request.
        """
        key = (matrix.fingerprint(), dim, backend.name)
        with self._lock:
            cached = self._priors.get(key)
            if cached is not None:
                self._priors.move_to_end(key)
                return cached
        if backend.kernel is None:
            prior = float("inf")
        else:
            from repro.gpu.kernels import kernel_time

            try:
                prior = kernel_time(
                    backend.kernel, matrix, dim, device=self._device
                ).microseconds
            except Exception:
                prior = float("inf")
        with self._lock:
            self._priors[key] = prior
            self._priors.move_to_end(key)
            while len(self._priors) > self.max_entries:
                self._priors.popitem(last=False)
        return prior

    # ------------------------------------------------------------------
    # Online estimates
    # ------------------------------------------------------------------
    def record(
        self, matrix: CSRMatrix, dim: int, backend_name: str, seconds: float
    ) -> None:
        """Fold one measured latency into the backend's running estimate."""
        key = (matrix.fingerprint(), dim, backend_name)
        with self._lock:
            arm = self._arms.get(key)
            if arm is None:
                arm = self._arms[key] = _ArmStats()
            else:
                self._arms.move_to_end(key)
            if arm.count == 0:
                arm.ewma = seconds
            else:
                arm.ewma += self.ewma_alpha * (seconds - arm.ewma)
            arm.count += 1
            while len(self._arms) > self.max_entries:
                self._arms.popitem(last=False)
        obs.histogram("serve.dispatch.latency_seconds", backend=backend_name).observe(
            seconds
        )

    def _scores(
        self,
        matrix: CSRMatrix,
        dim: int,
        backends: "tuple[Backend, ...] | list[Backend] | None" = None,
    ) -> list[float]:
        """Comparable per-backend scores (seconds-equivalent, lower wins).

        Measured backends score their latency EWMA.  Unmeasured backends
        score their modeled prior scaled by the median measured-over-
        modeled ratio of the already-measured backends, so model error
        cancels once any real sample exists; before any sample, the raw
        prior ranks (all scores share the modeled unit).
        """
        if backends is None:
            backends = self.backends
        fp = matrix.fingerprint()
        priors = [self.modeled_microseconds(matrix, dim, b) for b in backends]
        with self._lock:
            arms = [self._arms.get((fp, dim, b.name)) for b in backends]
            ratios = [
                arm.ewma / prior
                for arm, prior in zip(arms, priors)
                if arm is not None
                and arm.count > 0
                and np.isfinite(prior)
                and prior > 0
            ]
            scale = float(np.median(ratios)) if ratios else 1.0
            return [
                arm.ewma
                if arm is not None and arm.count > 0
                else prior * scale
                for arm, prior in zip(arms, priors)
            ]

    def best(
        self,
        matrix: CSRMatrix,
        dim: int,
        backends: "list[Backend] | None" = None,
    ) -> Backend:
        """The current exploitation choice (no exploration roll)."""
        candidates = list(backends) if backends is not None else list(self.backends)
        scores = self._scores(matrix, dim, candidates)
        finite = [s for s in scores if np.isfinite(s)]
        if not finite:
            return candidates[0]
        return candidates[int(np.argmin(scores))]

    def choose(
        self, matrix: CSRMatrix, dim: int
    ) -> "tuple[Backend | None, bool]":
        """Pick a backend; returns ``(backend, explored)``.

        Backends whose breaker is open are removed from the arm set;
        half-open backends compete for their limited probe slots.
        Returns ``(None, False)`` when no backend is admissible — the
        caller must serve from the verified floor.
        """
        candidates = [
            b for b in self.backends if self._breakers[b.name].available()
        ]
        while candidates:
            with self._lock:
                explore = self._rng.random() < self.epsilon
                if explore:
                    backend = candidates[
                        int(self._rng.integers(len(candidates)))
                    ]
            if not explore:
                backend = self.best(matrix, dim, candidates)
            # allow() consumes a half-open probe slot; a candidate that
            # lost the probe race drops out and the choice reruns.
            if self._breakers[backend.name].allow():
                return backend, explore
            candidates.remove(backend)
        return None, False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def resolve_class_tier(self):
        """The tier serving ``prefer_class_tier`` requests (or ``None``)."""
        if self._class_tier == "auto":
            from repro.sample.classtier import get_class_tier

            return get_class_tier()
        return self._class_tier

    def execute(
        self,
        matrix: CSRMatrix,
        dense: np.ndarray,
        *,
        plan_dim: "int | None" = None,
        verify: bool = False,
        rtol: float = 1e-9,
        atol: float = 1e-9,
        prefer_class_tier: bool = False,
    ) -> DispatchResult:
        """Dispatch one SpMM, guaranteeing a verified result on failure.

        Args:
            matrix: Sparse input.
            dense: Dense operand ``XW`` (possibly a column-wise batch).
            plan_dim: Per-request feature dimension used as the plan and
                bandit workload key; defaults to ``dense``'s width.
                Passing the request dim keeps one plan per workload no
                matter how requests were batched.
            verify: Cross-check the chosen backend's output against the
                independent reference before accepting it (the serving
                layer's paranoid mode; failures degrade to the verified
                fallback rather than propagate).
            prefer_class_tier: Route through the structure-class tier,
                bypassing the per-fingerprint prior/bandit machinery
                entirely — the right path for one-shot sampled
                subgraphs whose fingerprints never recur.  Ignored when
                the dispatcher was built with ``class_tier=None``.
        """
        dense = np.asarray(dense, dtype=np.float64)
        dim = plan_dim if plan_dim is not None else dense.shape[1]
        if prefer_class_tier:
            tier = self.resolve_class_tier()
            if tier is not None:
                return self._execute_classed(
                    tier, matrix, dense, verify=verify, rtol=rtol, atol=atol
                )
        # Selection + bandit overhead lands in the "dispatch" stage of
        # any active request trace; backend execution in "kernel".
        with rtrace.stage("dispatch"):
            backend, explored = self.choose(matrix, dim)
        if backend is None:
            # Every breaker is open: serve from the verified floor.  The
            # floor is never tripped — it IS the recovery path.
            obs.counter("serve.dispatch.floor").inc()
            started = time.perf_counter()
            with rtrace.stage("fallback", backend=FLOOR_BACKEND):
                output = verified_spmm(
                    matrix, dense, rtol=rtol, atol=atol
                ).output
            seconds = time.perf_counter() - started
            return DispatchResult(
                output=output,
                backend=FLOOR_BACKEND,
                fallback_used=True,
                detected="all circuit breakers open",
                latency_seconds=seconds,
                explored=False,
            )
        breaker = self._breakers[backend.name]
        obs.counter("serve.dispatch.requests", backend=backend.name).inc()
        detected: "str | None" = None
        fallback_used = False
        started = time.perf_counter()
        try:
            with obs.span("serve.dispatch.execute", backend=backend.name):
                with rtrace.stage("kernel", backend=backend.name):
                    output = backend.run(matrix, dense, self.plan_cache, dim)
            if verify:
                with rtrace.stage("verify"):
                    check_output(matrix, dense, output, rtol=rtol, atol=atol)
        except Exception as exc:
            # Oracle failure, executor self-check, or a crashed backend:
            # forced fallback to the self-checking executor.
            detected = f"{type(exc).__name__}: {exc}"
            fallback_used = True
            obs.counter("serve.dispatch.fallbacks", backend=backend.name).inc()
            breaker.record_failure()
            with rtrace.stage("fallback", backend=backend.name):
                output = verified_spmm(
                    matrix, dense, rtol=rtol, atol=atol
                ).output
        else:
            breaker.record_success()
        seconds = time.perf_counter() - started
        # Fallback latency is charged to the chosen arm on purpose: a
        # misbehaving backend must look expensive to the bandit.
        self.record(matrix, dim, backend.name, seconds)
        return DispatchResult(
            output=output,
            backend=backend.name,
            fallback_used=fallback_used,
            detected=detected,
            latency_seconds=seconds,
            explored=explored,
        )

    def _execute_classed(
        self,
        tier,
        matrix: CSRMatrix,
        dense: np.ndarray,
        *,
        verify: bool,
        rtol: float,
        atol: float,
    ) -> DispatchResult:
        """The class-tier path: no prior, no bandit, no per-fingerprint plan.

        The tier measures candidates on a class's first request and runs
        the class winner afterwards; failures degrade to the same
        :func:`verified_spmm` fallback as the bandit path.  Nothing here
        touches the per-fingerprint maps, so a stream of one-shot
        subgraphs leaves the long-lived workloads' bandit state alone.
        """
        detected: "str | None" = None
        fallback_used = False
        backend_name = "class-tier"
        started = time.perf_counter()
        try:
            with obs.span("serve.dispatch.execute", backend="class-tier"):
                with rtrace.stage("kernel", backend="class-tier"):
                    output, backend_name, hit = tier.execute(matrix, dense)
            rtrace.count("class_tier_hit" if hit else "class_tier_miss")
            if verify:
                with rtrace.stage("verify"):
                    check_output(matrix, dense, output, rtol=rtol, atol=atol)
        except Exception as exc:
            detected = f"{type(exc).__name__}: {exc}"
            fallback_used = True
            obs.counter("serve.dispatch.fallbacks", backend="class-tier").inc()
            with rtrace.stage("fallback", backend="class-tier"):
                output = verified_spmm(
                    matrix, dense, rtol=rtol, atol=atol
                ).output
        seconds = time.perf_counter() - started
        obs.counter("serve.dispatch.requests", backend=backend_name).inc()
        obs.histogram(
            "serve.dispatch.latency_seconds", backend=backend_name
        ).observe(seconds)
        return DispatchResult(
            output=output,
            backend=backend_name,
            fallback_used=fallback_used,
            detected=detected,
            latency_seconds=seconds,
            explored=False,
        )
