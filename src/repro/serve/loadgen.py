"""Synthetic traffic generation and the ``serve-bench`` subcommand.

Two load patterns against :class:`~repro.serve.service.InferenceService`:

* **Open loop** — Poisson arrivals at a configured offered rate; the
  generator never waits for responses, so queueing and load shedding are
  exercised exactly as an external client population would.
* **Closed loop** — a fixed population of synchronous clients, each
  issuing its next request when the previous one completes.

Graph popularity is Zipf-distributed over a set of Table II stand-ins
(:mod:`repro.graphs.datasets`), which is what makes the serving plan
cache earn its keep: a handful of hot graphs absorb most of the traffic.

The bench runs a *steady* scenario (throughput, p50/p95/p99 latency,
plan-cache and backend statistics, with every accepted response verified
against the independent SciPy oracle) and an *overload* scenario (a
burst into a deliberately tiny queue, proving admission control sheds
load instead of growing without bound), then appends a run to the
``BENCH_serve.json`` trajectory.  Measured wall-clock latencies are
reported next to *modeled* latencies from the GPU timing model; the
modeled percentiles are a deterministic function of the seed.

Each request is submitted under its dataset's name as the SLO *route*,
so the report carries per-route SLO attainment (:mod:`repro.obs.slo`,
rendered by ``python -m repro slo-report``), per-stage latency
attribution percentiles from the request-trace ledgers
(:mod:`repro.obs.rtrace`), and the flight recorder's slowest/failed
traces.
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

import threading

from repro import obs
from repro.formats import CSRMatrix
from repro.graphs.datasets import load_dataset
from repro.graphs.delta import DeltaCSR, UpdatePlanner
from repro.obs.rtrace import FlightRecorder
from repro.obs.slo import SLObjective, SLOTracker
from repro.resilience.oracles import reference_spmm
from repro.sample import (
    ClassTier,
    ZipfSeedGenerator,
    get_neighbor_index_cache,
    set_class_tier,
)
from repro.serve.dispatch import AdaptiveDispatcher
from repro.serve.epoch import GraphEpochManager
from repro.serve.plancache import PlanCache
from repro.serve.service import InferenceService, ServeConfig

DEFAULT_DATASETS = ("Cora", "Citeseer", "Wiki-Vote", "Oregon-1")

# Bound on un-harvested in-flight futures during open-loop generation,
# keeping operand memory flat regardless of the request count.
_HARVEST_WINDOW = 128


@dataclass(frozen=True)
class BenchConfig:
    """Tunables of one ``serve-bench`` run.

    ``workload`` selects the traffic shape: ``"full"`` (default) submits
    full-graph aggregations over the Zipf-popular dataset set; ``"ego"``
    submits :meth:`~repro.serve.service.InferenceService.submit_ego`
    minibatch requests against the hottest dataset, with seed nodes
    drawn from a degree-ranked Zipf law and per-request ``fanouts``
    k-hop sampling.  Ego responses verify against a SciPy
    fancy-indexing oracle over the graph of each response's *admitted
    epoch*, so the check stays exact under a concurrent
    ``--update-rate`` stream.
    """

    requests: int = 1000
    seed: int = 0
    mode: str = "open"
    workload: str = "full"
    fanouts: "tuple[int, ...]" = (10, 5)
    rate: float = 400.0
    concurrency: int = 8
    dim: int = 16
    datasets: tuple[str, ...] = DEFAULT_DATASETS
    scale: float = 0.25
    zipf_s: float = 1.1
    epsilon: float = 0.1
    verify: bool = True
    deadline_ms: "float | None" = None
    overload_requests: int = 64
    # Per-route SLO template: every dataset route is judged against this
    # p95 target (and it doubles as the error-budget threshold).
    slo_p95_ms: float = 250.0
    # Live-graph update stream: Poisson rate (batches/second) of edge
    # updates applied to the *hottest* dataset while the steady scenario
    # runs.  0 disables the stream; when enabled, the hot dataset is
    # served epoch-managed (submit pins each request to its admitted
    # epoch) and every hot response verifies against that epoch's graph.
    update_rate: float = 0.0
    update_batch_max: int = 3
    compact_threshold: int = 64
    service: ServeConfig = field(default_factory=ServeConfig)

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.mode not in ("open", "closed"):
            raise ValueError(f"mode must be 'open' or 'closed', got {self.mode}")
        if self.workload not in ("full", "ego"):
            raise ValueError(
                f"workload must be 'full' or 'ego', got {self.workload}"
            )
        if not self.fanouts or any(f == 0 for f in self.fanouts):
            raise ValueError(
                f"fanouts must be non-empty and non-zero, got {self.fanouts}"
            )
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be positive, got {self.deadline_ms}"
            )
        if not self.datasets:
            raise ValueError("at least one dataset is required")
        if self.slo_p95_ms <= 0:
            raise ValueError(
                f"slo_p95_ms must be positive, got {self.slo_p95_ms}"
            )
        if self.update_rate < 0:
            raise ValueError(
                f"update_rate must be >= 0, got {self.update_rate}"
            )
        if self.update_batch_max < 1:
            raise ValueError(
                f"update_batch_max must be >= 1, got {self.update_batch_max}"
            )
        if self.compact_threshold < 1:
            raise ValueError(
                f"compact_threshold must be >= 1, got {self.compact_threshold}"
            )


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized Zipf popularity over ``n`` ranks (rank 1 hottest)."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-s
    return weights / weights.sum()


def load_traffic_matrices(config: BenchConfig) -> list[CSRMatrix]:
    """The adjacency matrices traffic is drawn from, hottest first."""
    return [
        load_dataset(name, seed=config.seed, scale=config.scale).adjacency
        for name in config.datasets
    ]


def percentiles(values: "list[float]") -> dict:
    """p50/p95/p99/mean/max of a sample, in its own units."""
    if not values:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    array = np.asarray(values, dtype=np.float64)
    p50, p95, p99 = np.percentile(array, [50, 95, 99])
    return {
        "p50": float(p50),
        "p95": float(p95),
        "p99": float(p99),
        "mean": float(array.mean()),
        "max": float(array.max()),
    }


def percentiles_ms(seconds: "list[float]") -> dict:
    """p50/p95/p99/mean/max of a latency sample, in milliseconds."""
    return percentiles([s * 1e3 for s in seconds])


class _Verifier:
    """Checks accepted responses against the independent SciPy oracle."""

    def __init__(self) -> None:
        self.verified = 0
        self.mismatches = 0

    def check(
        self, matrix: CSRMatrix, dense: np.ndarray, output: np.ndarray
    ) -> None:
        reference = reference_spmm(matrix, dense)
        self.verified += 1
        if not np.allclose(output, reference, rtol=1e-9, atol=1e-9):
            self.mismatches += 1
            obs.counter("serve.loadgen.mismatches").inc()

    def check_ego(
        self,
        scipy_graph,
        nodes: np.ndarray,
        features: np.ndarray,
        output: np.ndarray,
    ) -> None:
        """Verify one ego response against the SciPy fancy-indexing oracle.

        ``scipy_graph`` is the *full* graph of the response's admitted
        epoch as a ``scipy.sparse.csr_matrix``; the expected output is
        ``(A[nodes][:, nodes]) @ X[nodes]`` computed entirely by SciPy,
        so this cross-checks the sampler's extraction *and* the
        class-tier SpMM in one shot.
        """
        induced = scipy_graph[nodes][:, nodes]
        reference = induced.toarray() @ features[nodes]
        self.verified += 1
        if not np.allclose(output, reference, rtol=1e-9, atol=1e-9):
            self.mismatches += 1
            obs.counter("serve.loadgen.mismatches").inc()

    def unknown_epoch(self) -> None:
        """An accepted response whose admitted epoch cannot be resolved.

        That is an epoch-consistency violation (the response claims an
        epoch the update stream never installed), so it counts as a
        mismatch — a silent failure — not as unverifiable.
        """
        self.verified += 1
        self.mismatches += 1
        obs.counter("serve.loadgen.mismatches").inc()


@dataclass
class _ScenarioTally:
    """Accumulated per-scenario outcome counts and samples."""

    requests: int = 0
    accepted: int = 0
    rejected: int = 0
    errors: int = 0
    deadline_misses: int = 0
    fallbacks: int = 0
    latencies: "list[float]" = field(default_factory=list)
    batch_sizes: "list[int]" = field(default_factory=list)
    backends: "dict[str, int]" = field(default_factory=dict)
    # Per-stage attribution samples (rtrace ledger seconds) and cache
    # event totals across accepted responses.
    stage_seconds: "dict[str, list[float]]" = field(default_factory=dict)
    events: "dict[str, int]" = field(default_factory=dict)
    # Accepted responses per admitted graph epoch (epoch-managed
    # requests only; static-matrix traffic carries no epoch).
    epochs: "dict[int, int]" = field(default_factory=dict)

    def absorb(self, response) -> None:
        self.requests += 1
        if response.rejected:
            self.rejected += 1
            return
        if response.deadline_exceeded:
            self.deadline_misses += 1
            return
        if not response.ok:
            self.errors += 1
            return
        self.accepted += 1
        if response.epoch is not None:
            self.epochs[response.epoch] = self.epochs.get(response.epoch, 0) + 1
        self.latencies.append(response.queue_seconds + response.service_seconds)
        self.batch_sizes.append(response.batch_size)
        if response.backend:
            self.backends[response.backend] = (
                self.backends.get(response.backend, 0) + 1
            )
        if response.fallback_used:
            self.fallbacks += 1
        if response.attribution:
            for stage, seconds in response.attribution["stages"].items():
                self.stage_seconds.setdefault(stage, []).append(seconds)
            for event, n in response.attribution["events"].items():
                self.events[event] = self.events.get(event, 0) + n

    def attribution_ms(self) -> dict:
        """Per-stage latency-attribution percentiles (milliseconds)."""
        return {
            stage: percentiles_ms(samples)
            for stage, samples in sorted(self.stage_seconds.items())
        }


class _EpochOracle:
    """Thread-safe ``epoch -> graph`` registry for epoch-pinned verification.

    The update stream registers every installed snapshot; harvesters
    resolve a response's admitted epoch to the exact graph it executed
    against.  ``matrix_for`` tolerates the tiny publish race (a request
    can admit a just-installed epoch before the updater thread records
    it) by waiting briefly for the registration.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_epoch: "dict[int, CSRMatrix]" = {}

    def note(self, snapshot) -> None:
        with self._lock:
            self._by_epoch[snapshot.epoch] = snapshot.matrix

    def matrix_for(
        self, epoch: int, timeout: float = 2.0
    ) -> "CSRMatrix | None":
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                matrix = self._by_epoch.get(epoch)
            if matrix is not None or time.monotonic() >= deadline:
                return matrix
            time.sleep(0.001)


class _UpdateStream:
    """Background Poisson edge-update stream against an epoch-managed service."""

    def __init__(
        self,
        service: InferenceService,
        oracle: _EpochOracle,
        config: BenchConfig,
        base: CSRMatrix,
    ) -> None:
        self.service = service
        self.oracle = oracle
        self.config = config
        self.planner = UpdatePlanner(base)
        self.batches = 0
        self.updates = 0
        self.errors = 0
        self.apply_seconds: "list[float]" = []
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="loadgen-updater", daemon=True
        )

    def _run(self) -> None:
        rng = np.random.default_rng(self.config.seed + 9001)
        while not self._stop.is_set():
            batch = self.planner.batch(
                rng, int(rng.integers(1, self.config.update_batch_max + 1))
            )
            started = time.perf_counter()
            try:
                snapshot = self.service.apply_updates(batch)
            except Exception:
                self.errors += 1
                obs.counter("serve.loadgen.update_errors").inc()
                return
            self.apply_seconds.append(time.perf_counter() - started)
            self.oracle.note(snapshot)
            self.batches += 1
            self.updates += len(batch)
            self._stop.wait(rng.exponential(1.0 / self.config.update_rate))

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> dict:
        """Stop the stream and return its stats block for the report."""
        self._stop.set()
        self._thread.join(timeout=10.0)
        stats = {
            "rate_target": self.config.update_rate,
            "batches": self.batches,
            "updates": self.updates,
            "errors": self.errors,
            "stalled": self._thread.is_alive(),
            "apply_ms": percentiles_ms(self.apply_seconds),
        }
        manager = self.service.epoch_manager
        if manager is not None:
            stats["epochs"] = manager.stats()
        return stats


def _modeled_microseconds(matrix: CSRMatrix, dim: int, cache: dict) -> float:
    """Deterministic modeled latency of the paper's kernel on one request."""
    key = (matrix.fingerprint(), dim)
    if key not in cache:
        from repro.gpu.kernels import kernel_time

        cache[key] = kernel_time("mergepath", matrix, dim).microseconds
    return cache[key]


class _ScipyGraphCache:
    """Per-epoch ``scipy.sparse.csr_matrix`` views for ego verification."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_fingerprint: dict = {}

    def get(self, matrix: CSRMatrix):
        import scipy.sparse

        key = matrix.fingerprint(include_values=True)
        with self._lock:
            cached = self._by_fingerprint.get(key)
            if cached is None:
                cached = scipy.sparse.csr_matrix(
                    (matrix.values, matrix.column_indices, matrix.row_pointers),
                    shape=matrix.shape,
                )
                self._by_fingerprint[key] = cached
            return cached


@obs.instrumented
def run_steady_ego(
    config: BenchConfig, service: InferenceService
) -> "tuple[_ScenarioTally, _Verifier, dict]":
    """The ego-workload steady scenario.

    All traffic targets the hottest dataset: each request samples a
    k-hop ego network around a Zipf-popular seed node
    (:meth:`InferenceService.submit_ego`) and aggregates the extracted
    subgraph through the structure-class tier.  Every accepted response
    is verified against SciPy fancy indexing over the full graph of the
    epoch it admitted under — exact even while ``--update-rate`` mutates
    the graph concurrently.
    """
    rng = np.random.default_rng(config.seed)
    matrices = load_traffic_matrices(config)
    hot = matrices[0]
    features = rng.random((hot.n_cols, config.dim))
    seed_gen = ZipfSeedGenerator.for_matrix(
        hot, alpha=config.zipf_s, rng=np.random.default_rng(config.seed + 17)
    )
    seeds = seed_gen.draw(config.requests)
    tally = _ScenarioTally()
    verifier = _Verifier()
    scipy_cache = _ScipyGraphCache()

    manager = service.epoch_manager
    live = manager is not None and config.update_rate > 0
    oracle = _EpochOracle()
    stream: "_UpdateStream | None" = None
    if manager is not None:
        oracle.note(manager.current_snapshot())
    if live:
        stream = _UpdateStream(service, oracle, config, hot)

    # Subgraph-size and per-hop-discovery samples across all submissions.
    subgraph_nodes: "list[float]" = []
    subgraph_nnz: "list[float]" = []
    hop_totals: "dict[int, int]" = {}
    size_lock = threading.Lock()

    def note_submission(submission) -> None:
        with size_lock:
            subgraph_nodes.append(float(submission.subgraph.n_nodes))
            subgraph_nnz.append(float(submission.subgraph.nnz))
            for hop, count in enumerate(submission.subgraph.hop_counts):
                hop_totals[hop] = hop_totals.get(hop, 0) + count

    def harvest(submission) -> None:
        response = submission.future.result()
        tally.absorb(response)
        if not (response.ok and config.verify):
            return
        if manager is not None:
            pinned = (
                oracle.matrix_for(response.epoch)
                if response.epoch is not None
                else None
            )
            if pinned is None:
                verifier.unknown_epoch()
                return
            base = pinned
        else:
            base = hot
        verifier.check_ego(
            scipy_cache.get(base),
            submission.subgraph.nodes,
            features,
            response.output,
        )

    route = config.datasets[0]
    started = time.perf_counter()
    if stream is not None:
        stream.start()
    try:
        if config.mode == "open":
            inflight: list = []
            for seed_node in seeds:
                submission = service.submit_ego(
                    int(seed_node),
                    features,
                    matrix=None if manager is not None else hot,
                    fanouts=config.fanouts,
                    deadline_ms=config.deadline_ms,
                    route=route,
                )
                note_submission(submission)
                inflight.append(submission)
                if len(inflight) >= _HARVEST_WINDOW:
                    harvest(inflight.pop(0))
                time.sleep(rng.exponential(1.0 / config.rate))
            for submission in inflight:
                harvest(submission)
        else:
            per_client = np.array_split(seeds, config.concurrency)

            def client(client_id: int, assigned: np.ndarray) -> None:
                for seed_node in assigned:
                    submission = service.submit_ego(
                        int(seed_node),
                        features,
                        matrix=None if manager is not None else hot,
                        fanouts=config.fanouts,
                        deadline_ms=config.deadline_ms,
                        route=route,
                    )
                    note_submission(submission)
                    harvest(submission)

            with ThreadPoolExecutor(max_workers=config.concurrency) as pool:
                futures = [
                    pool.submit(client, i, assigned)
                    for i, assigned in enumerate(per_client)
                ]
                for future in futures:
                    future.result()
    finally:
        update_stream = stream.stop() if stream is not None else None
    elapsed = time.perf_counter() - started

    throughput = tally.accepted / elapsed if elapsed > 0 else 0.0
    extra = {
        "elapsed_seconds": elapsed,
        "throughput_rps": throughput,
        "modeled": None,
        "attribution_ms": tally.attribution_ms(),
        "events": dict(tally.events),
        "update_stream": update_stream,
        "ego": {
            "fanouts": list(config.fanouts),
            "subgraph_nodes": percentiles(subgraph_nodes),
            "subgraph_nnz": percentiles(subgraph_nnz),
            "hop_discovered": {
                str(hop): count for hop, count in sorted(hop_totals.items())
            },
        },
    }
    return tally, verifier, extra


@obs.instrumented
def run_steady(
    config: BenchConfig, service: InferenceService
) -> "tuple[_ScenarioTally, _Verifier, dict]":
    """Drive the steady scenario; returns tally, verifier, modeled block."""
    if config.workload == "ego":
        return run_steady_ego(config, service)
    rng = np.random.default_rng(config.seed)
    matrices = load_traffic_matrices(config)
    weights = zipf_weights(len(matrices), config.zipf_s)
    choices = rng.choice(len(matrices), size=config.requests, p=weights)
    tally = _ScenarioTally()
    verifier = _Verifier()
    modeled_cache: dict = {}
    modeled_us = [
        _modeled_microseconds(matrices[int(i)], config.dim, modeled_cache)
        for i in choices
    ]

    # Live-update stream: when enabled the hottest dataset is served
    # epoch-managed (submitted as matrix=None, pinning each request to
    # its admitted epoch) while edge updates land concurrently.
    manager = service.epoch_manager
    live = manager is not None and config.update_rate > 0
    oracle = _EpochOracle()
    stream: "_UpdateStream | None" = None
    if live:
        oracle.note(manager.current_snapshot())
        stream = _UpdateStream(service, oracle, config, matrices[0])

    def harvest(entry) -> None:
        matrix, dense, future = entry
        response = future.result()
        tally.absorb(response)
        if response.ok and config.verify:
            if matrix is None:
                # Epoch-managed request: verify against the graph of the
                # epoch it admitted under, not the current one.
                pinned = (
                    oracle.matrix_for(response.epoch)
                    if response.epoch is not None
                    else None
                )
                if pinned is None:
                    verifier.unknown_epoch()
                else:
                    verifier.check(pinned, dense, response.output)
            else:
                verifier.check(matrix, dense, response.output)

    started = time.perf_counter()
    if stream is not None:
        stream.start()
    try:
        if config.mode == "open":
            inflight: list = []
            for idx in choices:
                matrix = matrices[int(idx)]
                dense = rng.random((matrix.n_cols, config.dim))
                submitted = None if live and int(idx) == 0 else matrix
                inflight.append(
                    (
                        submitted,
                        dense,
                        service.submit(
                            submitted,
                            dense,
                            deadline_ms=config.deadline_ms,
                            route=config.datasets[int(idx)],
                        ),
                    )
                )
                if len(inflight) >= _HARVEST_WINDOW:
                    harvest(inflight.pop(0))
                time.sleep(rng.exponential(1.0 / config.rate))
            for entry in inflight:
                harvest(entry)
        else:
            per_client = np.array_split(choices, config.concurrency)

            def client(client_id: int, assigned: np.ndarray) -> None:
                client_rng = np.random.default_rng(
                    (config.seed, client_id)
                )
                for idx in assigned:
                    matrix = matrices[int(idx)]
                    dense = client_rng.random((matrix.n_cols, config.dim))
                    submitted = None if live and int(idx) == 0 else matrix
                    harvest(
                        (
                            submitted,
                            dense,
                            service.submit(
                                submitted,
                                dense,
                                deadline_ms=config.deadline_ms,
                                route=config.datasets[int(idx)],
                            ),
                        )
                    )

            with ThreadPoolExecutor(max_workers=config.concurrency) as pool:
                futures = [
                    pool.submit(client, i, assigned)
                    for i, assigned in enumerate(per_client)
                ]
                for future in futures:
                    future.result()
    finally:
        update_stream = stream.stop() if stream is not None else None
    elapsed = time.perf_counter() - started

    p50, p95, p99 = np.percentile(modeled_us, [50, 95, 99])
    modeled = {
        "p50_us": float(p50),
        "p95_us": float(p95),
        "p99_us": float(p99),
        "mean_us": float(np.mean(modeled_us)),
    }
    throughput = tally.accepted / elapsed if elapsed > 0 else 0.0
    extra = {
        "elapsed_seconds": elapsed,
        "throughput_rps": throughput,
        "modeled": modeled,
        "attribution_ms": tally.attribution_ms(),
        "events": dict(tally.events),
        "update_stream": update_stream,
    }
    return tally, verifier, extra


@obs.instrumented
def run_overload(config: BenchConfig) -> "tuple[_ScenarioTally, _Verifier]":
    """Burst into a tiny queue; proves admission control sheds load."""
    rng = np.random.default_rng(config.seed + 1)
    matrix = load_traffic_matrices(config)[0]
    plan_cache = PlanCache(capacity=16)
    dispatcher = AdaptiveDispatcher(
        plan_cache=plan_cache, epsilon=config.epsilon, seed=config.seed
    )
    overload_cfg = ServeConfig(
        max_queue=4,
        max_batch=8,
        max_wait_ms=50.0,
        n_workers=1,
        request_timeout=config.service.request_timeout,
        isolation=config.service.isolation,
    )
    tally = _ScenarioTally()
    verifier = _Verifier()
    with InferenceService(dispatcher, overload_cfg) as service:
        inflight = []
        for _ in range(config.overload_requests):
            dense = rng.random((matrix.n_cols, config.dim))
            inflight.append((matrix, dense, service.submit(matrix, dense)))
        for entry_matrix, dense, future in inflight:
            response = future.result()
            tally.absorb(response)
            if response.ok and config.verify:
                verifier.check(entry_matrix, dense, response.output)
    return tally, verifier


@obs.instrumented
def run_bench(config: BenchConfig) -> dict:
    """Run both scenarios and assemble the ``BENCH_serve.json`` payload."""
    plan_cache = PlanCache(capacity=64)
    dispatcher = AdaptiveDispatcher(
        plan_cache=plan_cache, epsilon=config.epsilon, seed=config.seed
    )
    slo_tracker = SLOTracker(
        default_objective=SLObjective(
            p95_ms=config.slo_p95_ms, threshold_ms=config.slo_p95_ms
        )
    )
    flight_recorder = FlightRecorder(capacity=16)
    # Ego runs get a fresh structure-class tier so reported hit rates
    # belong to this run alone; restored on exit.
    previous_tier = (
        set_class_tier(ClassTier()) if config.workload == "ego" else None
    )
    epoch_manager = None
    if config.update_rate > 0:
        # The hottest dataset becomes a live graph: requests against it
        # pin their admitted epoch while the update stream mutates it,
        # and the plan cache (plus, for ego runs, the neighbor-index
        # cache) is invalidated epoch-precisely.
        hot = load_traffic_matrices(config)[0]
        caches: "tuple[object, ...]" = (plan_cache,)
        if config.workload == "ego":
            caches = (plan_cache, get_neighbor_index_cache())
        epoch_manager = GraphEpochManager(
            DeltaCSR(hot, compact_threshold=config.compact_threshold),
            caches=caches,
        )
    try:
        with InferenceService(
            dispatcher,
            config.service,
            slo_tracker=slo_tracker,
            flight_recorder=flight_recorder,
            epoch_manager=epoch_manager,
        ) as service:
            with obs.span("serve.loadgen.steady", requests=config.requests):
                steady, steady_verifier, extra = run_steady(config, service)
            health = service.health()
            slo_report = slo_tracker.report()
            # Process-isolation tier: worker crash/restart/heartbeat and
            # zero-copy statistics, captured before the pool closes.
            procpool_stats = (
                service._proc_pool.snapshot()
                if service._proc_pool is not None
                else None
            )
        cache_stats = plan_cache.stats()
        class_tier_stats = (
            dispatcher.resolve_class_tier().stats().to_dict()
            if config.workload == "ego"
            else None
        )
    finally:
        if previous_tier is not None:
            set_class_tier(previous_tier)

    with obs.span("serve.loadgen.overload", requests=config.overload_requests):
        overload, overload_verifier = run_overload(config)

    silent_failures = steady_verifier.mismatches + overload_verifier.mismatches
    return {
        "seed": config.seed,
        "config": {
            "requests": config.requests,
            "mode": config.mode,
            "workload": config.workload,
            "fanouts": list(config.fanouts),
            "rate_rps": config.rate,
            "concurrency": config.concurrency,
            "dim": config.dim,
            "datasets": list(config.datasets),
            "scale": config.scale,
            "zipf_s": config.zipf_s,
            "epsilon": config.epsilon,
            "max_queue": config.service.max_queue,
            "max_batch": config.service.max_batch,
            "max_wait_ms": config.service.max_wait_ms,
            "n_workers": config.service.n_workers,
            "isolation": config.service.isolation,
            "deadline_ms": config.deadline_ms,
            "update_rate": config.update_rate,
            "update_batch_max": config.update_batch_max,
            "compact_threshold": config.compact_threshold,
        },
        "steady": {
            "mode": config.mode,
            "requests": steady.requests,
            "accepted": steady.accepted,
            "rejected": steady.rejected,
            "errors": steady.errors,
            "deadline_misses": steady.deadline_misses,
            "fallbacks": steady.fallbacks,
            "verified": steady_verifier.verified,
            "mismatches": steady_verifier.mismatches,
            "throughput_rps": extra["throughput_rps"],
            "offered_rps": config.rate if config.mode == "open" else None,
            "elapsed_seconds": extra["elapsed_seconds"],
            "latency_ms": percentiles_ms(steady.latencies),
            "attribution_ms": extra["attribution_ms"],
            "events": extra["events"],
            "modeled": extra["modeled"],
            "batch_size_mean": (
                float(np.mean(steady.batch_sizes))
                if steady.batch_sizes
                else 0.0
            ),
            "backends": steady.backends,
            "plan_cache": cache_stats.to_dict(),
            # Accepted responses per admitted graph epoch (empty without
            # an update stream) and the stream's own statistics.
            "epochs": {
                str(epoch): count
                for epoch, count in sorted(steady.epochs.items())
            },
            **(
                {"update_stream": extra["update_stream"]}
                if extra["update_stream"] is not None
                else {}
            ),
            # Ego workloads: subgraph-size distributions and the
            # structure-class tier's reuse statistics.
            **({"ego": extra["ego"]} if "ego" in extra else {}),
            **(
                {"class_tier": class_tier_stats}
                if class_tier_stats is not None
                else {}
            ),
        },
        "overload": {
            "requests": overload.requests,
            "accepted": overload.accepted,
            "rejected": overload.rejected,
            "errors": overload.errors,
            "verified": overload_verifier.verified,
            "mismatches": overload_verifier.mismatches,
        },
        **({"procpool": procpool_stats} if procpool_stats is not None else {}),
        "health": health.to_dict(),
        "slo": slo_report,
        "flight_recorder": flight_recorder.to_dict(),
        "silent_failures": silent_failures,
    }


def render_summary(report: dict) -> str:
    """Human-readable one-screen summary of a bench report."""
    steady = report["steady"]
    overload = report["overload"]
    latency = steady["latency_ms"]
    cache = steady["plan_cache"]
    backends = ", ".join(
        f"{name}={count}"
        for name, count in sorted(
            steady["backends"].items(), key=lambda kv: -kv[1]
        )
    )
    lines = [
        "serve-bench",
        f"  steady    : {steady['accepted']}/{steady['requests']} accepted, "
        f"{steady['rejected']} shed, {steady['errors']} errors, "
        f"{steady['throughput_rps']:.0f} req/s",
        f"  latency ms: p50={latency['p50']:.2f} p95={latency['p95']:.2f} "
        f"p99={latency['p99']:.2f} max={latency['max']:.2f}",
        "  stages p95: "
        + (
            " ".join(
                f"{stage}={stats['p95']:.2f}"
                for stage, stats in steady.get("attribution_ms", {}).items()
            )
            or "none"
        ),
        f"  plan cache: hit_rate={cache['hit_rate']:.1%} "
        f"({cache['hits']} hits / {cache['misses']} misses, "
        f"{cache['bytes'] / 1024:.0f} KiB)",
        f"  backends  : {backends or 'none'}",
        f"  batching  : mean batch {steady['batch_size_mean']:.2f}",
        f"  overload  : {overload['rejected']}/{overload['requests']} shed "
        f"(bounded queue), {overload['accepted']} served",
        f"  verified  : {steady['verified'] + overload['verified']} responses, "
        f"{report['silent_failures']} silent failures",
    ]
    modeled = steady.get("modeled")
    if modeled is not None:
        lines.insert(
            3,
            f"  modeled us: p50={modeled['p50_us']:.1f} "
            f"p95={modeled['p95_us']:.1f} "
            f"p99={modeled['p99_us']:.1f}",
        )
    ego = steady.get("ego")
    if ego is not None:
        lines.append(
            f"  ego       : fanouts {ego['fanouts']}, subgraph p50 "
            f"{ego['subgraph_nodes']['p50']:.0f} nodes / "
            f"{ego['subgraph_nnz']['p50']:.0f} nnz"
        )
    class_tier = steady.get("class_tier")
    if class_tier is not None:
        lines.append(
            f"  class tier: hit_rate={class_tier['hit_rate']:.1%} "
            f"({class_tier['hits']} hits / {class_tier['misses']} misses, "
            f"{class_tier['classes']} classes)"
        )
    if steady.get("deadline_misses"):
        lines.insert(
            2,
            f"  deadlines : {steady['deadline_misses']}/{steady['requests']} "
            "missed and shed",
        )
    stream = steady.get("update_stream")
    if stream is not None:
        epochs = steady.get("epochs", {})
        stream_epochs = stream.get("epochs", {})
        lines.append(
            f"  updates   : {stream['updates']} edge update(s) in "
            f"{stream['batches']} batch(es), {len(epochs)} epoch(s) served, "
            f"{stream_epochs.get('compactions', 0)} compaction(s), "
            f"{stream_epochs.get('retired_epochs', 0)} retirement(s)"
        )
    procpool = report.get("procpool")
    if procpool is not None:
        kills = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(procpool["kills"].items())
            if count
        )
        lines.append(
            f"  procpool  : {procpool['executed']} batch(es), "
            f"{procpool['supervisor']['restarts']} restart(s), "
            f"kills: {kills or 'none'}, "
            f"{procpool['quarantine']['active']} quarantined, "
            f"{procpool['zero_copy']['per_request_graph_bytes_copied']} "
            "graph bytes copied/request"
        )
    health = report.get("health")
    if health is not None:
        causes = ", ".join(c["kind"] for c in health["causes"]) or "none"
        lines.append(
            f"  health    : {health['status']} (causes: {causes})"
        )
    slo = report.get("slo")
    if slo is not None:
        exhausted = sorted(
            route
            for route, r in slo.get("routes", {}).items()
            if r["budget"]["exhausted"]
        )
        lines.append(
            f"  slo       : {len(slo.get('routes', {}))} route(s), worst "
            f"burn {slo.get('worst_burn_rate', 0.0):.2f}x"
            + (f", exhausted: {', '.join(exhausted)}" if exhausted else "")
        )
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point for ``python -m repro serve-bench``."""
    parser = argparse.ArgumentParser(
        prog="repro serve-bench",
        description=(
            "Drive synthetic Zipf/Poisson traffic through the serving "
            "layer and record throughput, latency percentiles, plan-cache "
            "and load-shedding statistics."
        ),
    )
    parser.add_argument("--requests", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--mode", choices=("open", "closed"), default="open",
        help="open-loop Poisson arrivals or closed-loop clients",
    )
    parser.add_argument(
        "--rate", type=float, default=400.0,
        help="open-loop offered load in requests/second",
    )
    parser.add_argument(
        "--concurrency", type=int, default=8,
        help="closed-loop client population",
    )
    parser.add_argument("--dim", type=int, default=16)
    parser.add_argument(
        "--workload", choices=("full", "ego"), default="full",
        help=(
            "full: Zipf-popular full-graph aggregations (default); "
            "ego: k-hop ego-sampled minibatch requests against the "
            "hottest dataset, served through the structure-class tier"
        ),
    )
    parser.add_argument(
        "--fanouts", default="10,5",
        help=(
            "comma-separated per-hop neighbor caps for --workload ego "
            "(-1 keeps all neighbors at a hop)"
        ),
    )
    parser.add_argument(
        "--datasets", default=",".join(DEFAULT_DATASETS),
        help="comma-separated Table II dataset names",
    )
    parser.add_argument(
        "--scale", type=float, default=0.25,
        help="dataset downscale factor in (0, 1]",
    )
    parser.add_argument("--zipf-s", type=float, default=1.1)
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--isolation", choices=("thread", "process"), default="thread",
        help=(
            "execution tier: in-process worker threads (default) or "
            "process-isolated subprocess workers over shared-memory "
            "graph segments (crash/hang/OOM containment; see "
            "docs/ROBUSTNESS.md)"
        ),
    )
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--max-queue", type=int, default=64)
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-batch wall-clock budget in seconds",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=None,
        help=(
            "per-request deadline in milliseconds; requests that expire "
            "in the queue are shed with deadline_exceeded before execution"
        ),
    )
    parser.add_argument(
        "--slo-p95-ms", type=float, default=250.0,
        help=(
            "per-route p95 latency objective in milliseconds (also the "
            "per-request error-budget threshold; see `repro slo-report`)"
        ),
    )
    parser.add_argument(
        "--update-rate", type=float, default=0.0,
        help=(
            "Poisson rate (batches/second) of live edge updates applied "
            "to the hottest dataset during the steady scenario; requests "
            "against it pin their admitted graph epoch and verify "
            "against exactly that epoch (0 disables)"
        ),
    )
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the per-response SciPy oracle cross-check",
    )
    parser.add_argument(
        "--bench-dir", default=None,
        help="run-record directory (default: benchmarks/results)",
    )
    parser.add_argument(
        "--no-record", action="store_true",
        help="skip writing the BENCH_serve.json run record",
    )
    args = parser.parse_args(argv)

    config = BenchConfig(
        requests=args.requests,
        seed=args.seed,
        mode=args.mode,
        workload=args.workload,
        fanouts=tuple(
            int(f.strip()) for f in args.fanouts.split(",") if f.strip()
        ),
        rate=args.rate,
        concurrency=args.concurrency,
        dim=args.dim,
        datasets=tuple(
            name.strip() for name in args.datasets.split(",") if name.strip()
        ),
        scale=args.scale,
        zipf_s=args.zipf_s,
        epsilon=args.epsilon,
        verify=not args.no_verify,
        deadline_ms=args.deadline_ms,
        slo_p95_ms=args.slo_p95_ms,
        update_rate=args.update_rate,
        service=ServeConfig(
            max_queue=args.max_queue,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            n_workers=args.workers,
            request_timeout=args.timeout,
            isolation=args.isolation,
        ),
    )

    with obs.profiled() as session:
        report = run_bench(config)
    print(render_summary(report))

    passed = report["silent_failures"] == 0
    if not args.no_record:
        record = obs.run_record(
            "serve",
            metrics=session.snapshot(),
            wall_seconds=session.wall_seconds,
            status="ok" if passed else "silent-failures",
            extra={"serve": report},
        )
        path = obs.write_run_record(record, args.bench_dir)
        print(f"run record: {path}")
    return 0 if passed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
