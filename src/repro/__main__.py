"""Command-line entry point: ``python -m repro [experiment ...]``.

Delegates to :mod:`repro.experiments.harness`; run with ``--list`` to see
the available experiments and their approximate runtimes.
"""

import sys

from repro.experiments.harness import main

if __name__ == "__main__":
    sys.exit(main())
