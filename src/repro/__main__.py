"""Command-line entry point: ``python -m repro [command | experiment ...]``.

Subcommands:

* ``obs-report`` — pretty-print the most recent exported run record
  (metric summary and kernel cycle breakdowns); see
  :mod:`repro.obs.report`.
* ``chaos`` — run the fault-injection matrix and report detection
  coverage (exit 1 on any silent failure); see
  :mod:`repro.resilience.chaos` and ``docs/ROBUSTNESS.md``.
* ``chaos-serve`` — inject faults (persistent backend exceptions,
  worker-thread crashes, bit-flipped accumulators, corrupted request
  matrices, expired deadlines) into a live serving stack under Poisson
  load and verify the failure-domain guards catch every one; see
  :mod:`repro.resilience.chaos_serve`.
* ``chaos-proc`` — attack the process-isolated execution tier (worker
  SIGKILLs mid-batch, busy-loop hangs, heartbeat loss, memory hogs,
  poison requests, torn shared-memory segments) and verify every
  failure is contained with a terminal status, an explanatory health
  cause, and zero oracle disagreements; see
  :mod:`repro.resilience.chaos_proc`.
* ``chaos-update`` — race live graph updates against the serving stack
  (mid-batch, mid-compile, mid-eviction), verifying every response
  against a reference pinned to its admitted epoch and that caches
  invalidate exactly the retired epochs' keys; see
  :mod:`repro.resilience.chaos_update`.
* ``serve-bench`` — drive synthetic Zipf/Poisson traffic through the
  serving layer and record throughput, latency percentiles, per-stage
  latency attribution, SLO attainment, plan-cache and load-shedding
  statistics; see :mod:`repro.serve.loadgen` and ``docs/SERVING.md``.
* ``sample-bench`` — drive a Zipf-seeded ego-sampling minibatch
  workload: demonstrate the fingerprint plan-cache collapse on one-shot
  subgraphs, measure the structure-class tier's reuse and rows/s, and
  verify every output (including under live updates) against a SciPy
  oracle pinned to its admitted epoch; see :mod:`repro.sample.bench`.
* ``slo-report`` — render per-route SLO attainment (observed
  percentiles vs. objectives, error-budget burn) from the latest
  ``serve-bench`` run record; see :mod:`repro.obs.slo`.
* ``kernel-bench`` — measure every SpMM executor (reference, vectorized,
  thread pool, engine fast path) on synthetic power-law datasets and
  record rows/s + GFLOP-equivalents in ``BENCH_kernel.json``; see
  :mod:`repro.engine.bench` and ``docs/PERFORMANCE.md``.
* ``shard-bench`` — measure N-shard multi-process SpMM (scatter ->
  per-shard SpMM -> halo gather) against the single-process kernel,
  record rows/s, speedup, halo bytes and partition imbalance in
  ``BENCH_shard.json``; see :mod:`repro.shard.bench` and
  ``docs/SHARDING.md``.
* ``chaos-shard`` — kill shard workers mid-batch and exhaust shard
  restart budgets, verifying failures stay contained to the victim
  shard (sub-batch re-replay, per-shard health causes, correct
  answers throughout); see :mod:`repro.resilience.chaos_shard`.
* anything else delegates to :mod:`repro.experiments.harness`; run with
  ``--list`` to see the available experiments and their (measured or
  estimated) runtimes, and with ``--profile``/``--trace-out`` to collect
  metrics and Chrome traces.
"""

import sys


def main(argv: "list[str] | None" = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "obs-report":
        from repro.obs.report import main as report_main

        return report_main(argv[1:])
    if argv and argv[0] == "chaos":
        from repro.resilience.chaos import main as chaos_main

        return chaos_main(argv[1:])
    if argv and argv[0] == "chaos-serve":
        from repro.resilience.chaos_serve import main as chaos_serve_main

        return chaos_serve_main(argv[1:])
    if argv and argv[0] == "chaos-proc":
        from repro.resilience.chaos_proc import main as chaos_proc_main

        return chaos_proc_main(argv[1:])
    if argv and argv[0] == "chaos-update":
        from repro.resilience.chaos_update import main as chaos_update_main

        return chaos_update_main(argv[1:])
    if argv and argv[0] == "serve-bench":
        from repro.serve.loadgen import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "sample-bench":
        from repro.sample.bench import main as sample_main

        return sample_main(argv[1:])
    if argv and argv[0] == "slo-report":
        from repro.obs.slo import main as slo_main

        return slo_main(argv[1:])
    if argv and argv[0] == "kernel-bench":
        from repro.engine.bench import main as kernel_main

        return kernel_main(argv[1:])
    if argv and argv[0] == "shard-bench":
        from repro.shard.bench import main as shard_main

        return shard_main(argv[1:])
    if argv and argv[0] == "chaos-shard":
        from repro.resilience.chaos_shard import main as chaos_shard_main

        return chaos_shard_main(argv[1:])
    from repro.experiments.harness import main as harness_main

    return harness_main(argv)


if __name__ == "__main__":
    try:
        code = main()
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. ``| head``); exit quietly the
        # way POSIX tools do instead of dumping a traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    sys.exit(code)
