"""Compact relabeled ego-subgraph extraction.

Given the node set a :class:`~repro.sample.sampler.FanoutSampler`
discovered, :func:`extract_subgraph` materializes the *induced*
adjacency over those nodes — semantically identical to SciPy's fancy
indexing ``A[nodes][:, nodes]`` (the oracle the property tests pin it
to) — as a small relabeled :class:`~repro.formats.csr.CSRMatrix`, plus
the local→global node mapping and a gathered feature slice.  The
extracted matrix inherits the parent's epoch :attr:`~CSRMatrix.version`
stamp, so epoch-pinned verification works on subgraphs exactly as it
does on full graphs.

Extraction is fully vectorized: one gather of the selected rows' index
ranges, one lookup-table relabeling pass, one bincount for the new row
pointers — ``O(sum(degree(nodes)))`` work, independent of the full
graph's size beyond the lookup table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.formats import CSRMatrix

INDEX_DTYPE = np.int64


@dataclass(frozen=True)
class EgoSubgraph:
    """One sampled, relabeled ego network ready for serving.

    Attributes:
        matrix: Induced adjacency over the sampled nodes, relabeled to
            ``[0, n)`` local ids, version-stamped from the parent graph.
        nodes: Local→global id mapping (``nodes[0]`` is the seed).
        seed: Global id of the seed node.
        hop_counts: Nodes *discovered* per hop (hop 0 is the seed).
        fanouts: The per-hop fanout caps the sample was drawn with.
    """

    matrix: CSRMatrix
    nodes: np.ndarray = field(repr=False)
    seed: int
    hop_counts: "tuple[int, ...]" = ()
    fanouts: "tuple[int, ...]" = ()

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def nnz(self) -> int:
        return self.matrix.nnz

    def to_dict(self) -> dict:
        """Size summary for run records (never the arrays themselves)."""
        return {
            "seed": int(self.seed),
            "n_nodes": int(self.n_nodes),
            "nnz": int(self.nnz),
            "hop_counts": [int(c) for c in self.hop_counts],
            "fanouts": [int(f) for f in self.fanouts],
        }


def _gather_row_ranges(
    matrix: CSRMatrix, nodes: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Flat nnz indices of the selected rows, plus per-row lengths."""
    starts = matrix.row_pointers[nodes]
    lengths = matrix.row_pointers[nodes + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=INDEX_DTYPE), lengths
    # arange over the concatenated ranges without a Python loop:
    # position k inside row r maps to starts[r] + k.
    ends = np.cumsum(lengths)
    offsets = np.arange(total, dtype=INDEX_DTYPE) - np.repeat(
        ends - lengths, lengths
    )
    flat = np.repeat(starts, lengths) + offsets
    return flat, lengths


def extract_subgraph(
    matrix: CSRMatrix,
    nodes: np.ndarray,
    *,
    add_self_loops: bool = False,
    self_loop_value: float = 1.0,
) -> CSRMatrix:
    """The induced adjacency ``matrix[nodes][:, nodes]``, relabeled.

    Args:
        matrix: Square parent adjacency.
        nodes: Distinct global node ids; their order defines the local
            ids of the result.
        add_self_loops: Add a ``self_loop_value`` diagonal entry to every
            local row that lacks one (GCN-style ``A + I`` on the
            subgraph; rows that already carry a diagonal are untouched,
            matching ``scipy`` oracle semantics of adding the identity
            only where missing).
        self_loop_value: Value of inserted diagonal entries.

    The result carries the parent's :attr:`~CSRMatrix.version` stamp.
    Column indices are sorted within each row, so the output is
    byte-identical to a sorted SciPy extraction.
    """
    nodes = np.ascontiguousarray(nodes, dtype=INDEX_DTYPE)
    if matrix.n_rows != matrix.n_cols:
        raise ValueError(f"adjacency must be square, got {matrix.shape}")
    if nodes.ndim != 1:
        raise ValueError(f"nodes must be 1-D, got shape {nodes.shape}")
    if len(nodes) == 0:
        raise ValueError("cannot extract an empty subgraph")
    if len(nodes) and (nodes.min() < 0 or nodes.max() >= matrix.n_rows):
        raise ValueError(
            f"node ids must lie in [0, {matrix.n_rows})"
        )
    n_local = len(nodes)
    # Global -> local lookup table; -1 marks nodes outside the sample.
    lookup = np.full(matrix.n_cols, -1, dtype=INDEX_DTYPE)
    lookup[nodes] = np.arange(n_local, dtype=INDEX_DTYPE)
    if np.count_nonzero(lookup >= 0) != n_local:
        raise ValueError("node ids must be distinct")

    flat, lengths = _gather_row_ranges(matrix, nodes)
    local_cols = lookup[matrix.column_indices[flat]]
    keep = local_cols >= 0
    local_rows = np.repeat(
        np.arange(n_local, dtype=INDEX_DTYPE), lengths
    )[keep]
    local_cols = local_cols[keep]
    local_vals = matrix.values[flat][keep]

    if add_self_loops:
        has_diag = np.zeros(n_local, dtype=bool)
        has_diag[local_rows[local_rows == local_cols]] = True
        missing = np.flatnonzero(~has_diag).astype(INDEX_DTYPE)
        if len(missing):
            local_rows = np.concatenate([local_rows, missing])
            local_cols = np.concatenate([local_cols, missing])
            local_vals = np.concatenate(
                [local_vals, np.full(len(missing), self_loop_value)]
            )

    # Canonical CSR layout: row-major, columns sorted within each row.
    order = np.lexsort((local_cols, local_rows))
    counts = np.bincount(local_rows, minlength=n_local)
    row_pointers = np.concatenate(
        ([0], np.cumsum(counts))
    ).astype(INDEX_DTYPE)
    sub = CSRMatrix(
        n_rows=n_local,
        n_cols=n_local,
        row_pointers=row_pointers,
        column_indices=local_cols[order],
        values=local_vals[order],
        version=matrix.version,
    )
    obs.counter("sample.extract.subgraphs").inc()
    obs.counter("sample.extract.nnz").inc(sub.nnz)
    return sub


def gather_features(features: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """The sampled nodes' feature rows, in local-id order (a copy)."""
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError(
            f"features must be 2-D, got shape {features.shape}"
        )
    return features[np.ascontiguousarray(nodes, dtype=INDEX_DTYPE)]
