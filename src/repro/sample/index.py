"""CSC-backed neighbor index over a (possibly live) graph.

Ego-graph sampling expands a frontier hop by hop: for every frontier
node it needs that node's *message sources* — the nodes whose features
flow into its aggregated output.  Under this repo's convention the
aggregation is ``out = A @ X``, so row ``v`` of the adjacency lists
exactly the nodes feeding ``v``; equivalently, ``v``'s message sources
are column ``v`` of the message-flow graph's CSC.  That CSC *is* the
adjacency's CSR arrays reinterpreted — ``col_pointers = A.row_pointers``
and ``row_indices = A.column_indices`` — so :class:`NeighborIndex`
builds its :class:`~repro.formats.csc.CSCMatrix` zero-copy (GraphBolt
stores its sampling graphs the same way: one CSC indexed by the node
being sampled *for*).

For the opposite direction ("which nodes does ``v`` feed?", the push
view) the index falls back to a real :meth:`CSRMatrix.to_csc`
conversion, which costs one ``O(nnz log nnz)`` sort.

Indexes are cached process-wide by content fingerprint
(:class:`NeighborIndexCache`).  Fingerprints mix in the graph epoch
(PR 7), so the cache is epoch-aware for free, and the cache exposes
``invalidate_fingerprint`` so a
:class:`~repro.serve.epoch.GraphEpochManager` can retire exactly one
epoch's index when its last lease drains.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro import obs
from repro.formats import CSRMatrix
from repro.formats.csc import CSCMatrix

# Frontier expansion follows message sources (the pull direction used by
# ``A @ X`` aggregation) or message sinks (the push direction).
PULL = "pull"
PUSH = "push"


class NeighborIndex:
    """Column-slice neighbor lookups for fanout sampling.

    Args:
        matrix: The graph adjacency (``A``; rows aggregate columns).
        direction: :data:`PULL` (default) expands toward the nodes a
            frontier node *aggregates from* — built zero-copy from the
            CSR arrays.  :data:`PUSH` expands toward the nodes it
            *feeds*, paying one CSC conversion.
    """

    def __init__(self, matrix: CSRMatrix, direction: str = PULL) -> None:
        if direction not in (PULL, PUSH):
            raise ValueError(
                f"direction must be '{PULL}' or '{PUSH}', got {direction!r}"
            )
        if matrix.n_rows != matrix.n_cols:
            raise ValueError(
                f"adjacency must be square, got {matrix.shape}"
            )
        self.matrix = matrix
        self.direction = direction
        if direction == PULL:
            # Zero-copy reinterpretation: column v of this CSC is row v
            # of A — the nodes whose features flow into v's aggregation.
            self.csc = CSCMatrix(
                n_rows=matrix.n_cols,
                n_cols=matrix.n_rows,
                col_pointers=matrix.row_pointers,
                row_indices=matrix.column_indices,
                values=matrix.values,
                version=matrix.version,
            )
        else:
            self.csc = matrix.to_csc()
        obs.counter("sample.index.built").inc()

    @property
    def n_nodes(self) -> int:
        return self.csc.n_cols

    @property
    def fingerprint(self) -> str:
        """The underlying matrix's (version-mixed) structure fingerprint."""
        return self.matrix.fingerprint()

    @property
    def degrees(self) -> np.ndarray:
        """Per-node neighbor counts in the index's direction."""
        return self.csc.col_lengths

    def neighbors(self, node: int) -> "tuple[np.ndarray, np.ndarray]":
        """``(neighbor ids, edge values)`` of one node (read-only views)."""
        return self.csc.col_slice(node)

    @property
    def nbytes(self) -> int:
        """Bytes pinned beyond the matrix itself (0 for the pull view)."""
        if self.direction == PULL:
            return 0
        return (
            self.csc.col_pointers.nbytes
            + self.csc.row_indices.nbytes
            + self.csc.values.nbytes
        )


class NeighborIndexCache:
    """Thread-safe LRU cache of neighbor indexes keyed by fingerprint.

    Fingerprints are version-precise (PR 7), so one live graph holds one
    entry per epoch; ``invalidate_fingerprint`` lets the epoch manager
    retire exactly the entries of a drained epoch.
    """

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.RLock()
        self._indexes: "OrderedDict[tuple[str, str], NeighborIndex]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def get(self, matrix: CSRMatrix, direction: str = PULL) -> NeighborIndex:
        """The cached index for ``matrix``, building it on miss."""
        key = (matrix.fingerprint(), direction)
        with self._lock:
            index = self._indexes.get(key)
            if index is not None:
                self._indexes.move_to_end(key)
                self.hits += 1
                obs.counter("sample.index.hits").inc()
                return index
            self.misses += 1
            obs.counter("sample.index.misses").inc()
            index = NeighborIndex(matrix, direction)
            self._indexes[key] = index
            while len(self._indexes) > self.capacity:
                self._indexes.popitem(last=False)
                obs.counter("sample.index.evictions").inc()
            return index

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every index of one (epoch-precise) fingerprint."""
        with self._lock:
            stale = [key for key in self._indexes if key[0] == fingerprint]
            for key in stale:
                del self._indexes[key]
            if stale:
                self.invalidations += len(stale)
                obs.counter("sample.index.invalidations").inc(len(stale))
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._indexes.clear()
            self.hits = 0
            self.misses = 0
            self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._indexes)


_default_cache = NeighborIndexCache()
_default_lock = threading.Lock()


def get_neighbor_index_cache() -> NeighborIndexCache:
    """The process-wide neighbor-index cache (shared by serve and bench)."""
    return _default_cache


def set_neighbor_index_cache(cache: NeighborIndexCache) -> NeighborIndexCache:
    """Install a new process-wide index cache; returns the previous one."""
    global _default_cache
    with _default_lock:
        previous, _default_cache = _default_cache, cache
    return previous
