"""Ego-graph minibatch sampling for the serving stack.

The :mod:`repro.sample` package turns the full-graph serving pipeline
into a GraphBolt-style minibatch one:

* :mod:`~repro.sample.index` — CSC-backed neighbor lookups over the
  live graph, cached per (epoch-precise) fingerprint;
* :mod:`~repro.sample.sampler` — seeded k-hop fanout sampling plus
  Zipf seed popularity;
* :mod:`~repro.sample.extract` — compact relabeled subgraph extraction
  (small version-stamped :class:`~repro.formats.csr.CSRMatrix`,
  node mapping, gathered features);
* :mod:`~repro.sample.classtier` — the structure-class plan tier that
  restores cache reuse over one-shot subgraph fingerprints;
* :mod:`~repro.sample.bench` — ``python -m repro sample-bench``.

Entry points: :func:`~repro.sample.sampler.sample_ego` for one-shot
sampling, :meth:`repro.serve.InferenceService.submit_ego` for serving.
"""

from repro.sample.classtier import (
    ClassPlan,
    ClassTier,
    ClassTierStats,
    StructureClass,
    classify,
    get_class_tier,
    set_class_tier,
)
from repro.sample.extract import (
    EgoSubgraph,
    extract_subgraph,
    gather_features,
)
from repro.sample.index import (
    PULL,
    PUSH,
    NeighborIndex,
    NeighborIndexCache,
    get_neighbor_index_cache,
    set_neighbor_index_cache,
)
from repro.sample.sampler import (
    FanoutSampler,
    SampleResult,
    ZipfSeedGenerator,
    sample_ego,
)

__all__ = [
    "PULL",
    "PUSH",
    "ClassPlan",
    "ClassTier",
    "ClassTierStats",
    "EgoSubgraph",
    "FanoutSampler",
    "NeighborIndex",
    "NeighborIndexCache",
    "SampleResult",
    "StructureClass",
    "ZipfSeedGenerator",
    "classify",
    "extract_subgraph",
    "gather_features",
    "get_class_tier",
    "get_neighbor_index_cache",
    "sample_ego",
    "set_class_tier",
    "set_neighbor_index_cache",
]
