"""Seeded k-hop fanout neighbor sampling.

:class:`FanoutSampler` grows an ego network around one seed node the
way GraphSAGE-style minibatch trainers do: hop ``h`` draws at most
``fanouts[h]`` neighbors *without replacement* from every frontier
node's neighbor list, the union of fresh draws becomes the next
frontier, and already-visited nodes are never re-added.  Sampling is a
pure function of ``(graph, seed, fanouts, rng state)`` — two samplers
holding generators seeded identically produce byte-identical node sets,
which is what lets the bench verify every served subgraph against a
SciPy oracle after the fact.

:class:`ZipfSeedGenerator` models the serving-side request skew: seed
popularity follows a Zipf law over nodes ranked by degree, so hubs are
requested far more often than the long tail — the access pattern that
collapses a naive per-fingerprint plan cache and motivates the
structure-class tier (:mod:`repro.sample.classtier`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.formats import CSRMatrix
from repro.sample.extract import (
    EgoSubgraph,
    extract_subgraph,
)
from repro.sample.index import (
    PULL,
    NeighborIndex,
    get_neighbor_index_cache,
)

INDEX_DTYPE = np.int64


@dataclass(frozen=True)
class SampleResult:
    """The node set one fanout walk discovered.

    Attributes:
        nodes: Distinct global ids in discovery order (``nodes[0]`` is
            the seed).
        hop_counts: Nodes first discovered at each hop; ``hop_counts[0]``
            is always 1 (the seed) and the entries sum to ``len(nodes)``.
        fanouts: The per-hop caps the walk ran with.
    """

    nodes: np.ndarray = field(repr=False)
    hop_counts: "tuple[int, ...]" = ()
    fanouts: "tuple[int, ...]" = ()


class FanoutSampler:
    """K-hop neighbor sampling with per-hop fanout caps.

    Args:
        index: Neighbor index to expand through (its direction decides
            whether hops follow message sources or sinks).
        fanouts: Per-hop caps, outermost hop last; ``len(fanouts)`` is
            the number of hops.  A non-positive fanout keeps *all*
            neighbors at that hop (DGL's ``-1`` convention).
    """

    def __init__(self, index: NeighborIndex, fanouts: "tuple[int, ...]") -> None:
        fanouts = tuple(int(f) for f in fanouts)
        if not fanouts:
            raise ValueError("fanouts must name at least one hop")
        self.index = index
        self.fanouts = fanouts

    def sample(self, seed: int, rng: np.random.Generator) -> SampleResult:
        """One ego walk from ``seed``; consumes ``rng`` deterministically."""
        seed = int(seed)
        if not 0 <= seed < self.index.n_nodes:
            raise ValueError(
                f"seed {seed} out of range [0, {self.index.n_nodes})"
            )
        visited = {seed}
        ordered = [seed]
        frontier = [seed]
        hop_counts = [1]
        for fanout in self.fanouts:
            fresh: "list[int]" = []
            for node in frontier:
                neighbor_ids, _ = self.index.neighbors(node)
                if len(neighbor_ids) == 0:
                    continue
                if 0 < fanout < len(neighbor_ids):
                    picks = rng.choice(
                        neighbor_ids, size=fanout, replace=False
                    )
                else:
                    picks = neighbor_ids
                for neighbor in picks:
                    neighbor = int(neighbor)
                    if neighbor not in visited:
                        visited.add(neighbor)
                        ordered.append(neighbor)
                        fresh.append(neighbor)
            hop_counts.append(len(fresh))
            if not fresh:
                break
            frontier = fresh
        obs.counter("sample.sampler.walks").inc()
        obs.counter("sample.sampler.nodes").inc(len(ordered))
        return SampleResult(
            nodes=np.asarray(ordered, dtype=INDEX_DTYPE),
            hop_counts=tuple(hop_counts),
            fanouts=self.fanouts,
        )


def sample_ego(
    matrix: CSRMatrix,
    seed: int,
    *,
    fanouts: "tuple[int, ...]" = (10, 5),
    rng: "np.random.Generator | None" = None,
    direction: str = PULL,
    add_self_loops: bool = False,
) -> EgoSubgraph:
    """Sample + extract in one call: the ego subgraph around ``seed``.

    Uses the process-wide :class:`~repro.sample.index.NeighborIndexCache`
    so repeated calls against the same (epoch of the) graph reuse one
    index.  ``rng`` defaults to a generator seeded by the seed node,
    making the default path deterministic per seed.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    index = get_neighbor_index_cache().get(matrix, direction)
    sampler = FanoutSampler(index, tuple(fanouts))
    with obs.span("sample.ego"):
        result = sampler.sample(seed, rng)
        sub = extract_subgraph(
            matrix, result.nodes, add_self_loops=add_self_loops
        )
    return EgoSubgraph(
        matrix=sub,
        nodes=result.nodes,
        seed=int(seed),
        hop_counts=result.hop_counts,
        fanouts=result.fanouts,
    )


class ZipfSeedGenerator:
    """Degree-ranked Zipf popularity over a graph's nodes.

    Node at popularity rank ``r`` (1-based, ranked by descending degree,
    ties broken by node id) is drawn with weight ``1 / r**alpha``.
    ``alpha=0`` degenerates to uniform; ``alpha`` around 1 matches the
    hub-heavy request skew seen in production GNN inference traces.
    """

    def __init__(
        self,
        degrees: np.ndarray,
        *,
        alpha: float = 1.0,
        rng: "np.random.Generator | None" = None,
    ) -> None:
        degrees = np.asarray(degrees, dtype=np.float64)
        if degrees.ndim != 1 or len(degrees) == 0:
            raise ValueError("degrees must be a non-empty 1-D array")
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.alpha = float(alpha)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        # Descending degree, ascending node id on ties (stable sort on -deg).
        self.ranked_nodes = np.argsort(-degrees, kind="stable").astype(
            INDEX_DTYPE
        )
        ranks = np.arange(1, len(degrees) + 1, dtype=np.float64)
        weights = 1.0 / np.power(ranks, self.alpha)
        self.probabilities = weights / weights.sum()

    @classmethod
    def for_matrix(
        cls,
        matrix: CSRMatrix,
        *,
        alpha: float = 1.0,
        rng: "np.random.Generator | None" = None,
    ) -> "ZipfSeedGenerator":
        """Popularity ranked by out-degree (CSR row lengths) of ``matrix``."""
        return cls(matrix.row_lengths, alpha=alpha, rng=rng)

    def draw(self, count: int = 1) -> np.ndarray:
        """``count`` seed node ids, hubs most likely."""
        picks = self._rng.choice(
            len(self.ranked_nodes), size=count, p=self.probabilities
        )
        obs.counter("sample.seeds.drawn").inc(count)
        return self.ranked_nodes[picks]
