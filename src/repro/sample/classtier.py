"""Structure-class plan tier for sampled-subgraph serving.

Ego sampling breaks the serving stack's caching model.  Every cache in
the fast path — :class:`~repro.serve.plancache.PlanCache`, the engine's
:class:`~repro.engine.kernels.EnginePlanCache`, the dispatcher's bandit
priors — is keyed by content fingerprint, which is exactly right for a
small population of long-lived graphs and exactly wrong for ego
serving, where every request carries a freshly extracted subgraph with
a fingerprint nobody will ever see again.  Under the ego workload the
naive plan-cache hit rate collapses to ~0% and every request pays plan
compilation plus bandit warm-up for a matrix that is used once
(``sample-bench`` measures this collapse; the acceptance bar is <5%).

The fix is to stop keying on *identity* and key on *structure class*:

* ``row bucket`` — ``n_rows`` rounded up to a power of two,
* ``nnz bucket`` — ``nnz`` rounded up to a power of four (coarser,
  keeping the class count low enough that a steady workload revisits
  classes constantly), and
* ``degree profile`` — ``flat`` / ``skewed`` / ``hub`` from the
  max-to-mean row-length ratio, the same signal the merge-path
  scheduler uses to pick split granularity.

All subgraphs in a class share one :class:`ClassPlan`.  The first
request of a class measures every candidate executor on the live
request (a *miss*); every later request reuses the winner (a *hit*)
with zero per-fingerprint state.  Candidate executors:

* ``padded`` — an ELL-style class template: reusable
  ``(row bucket, slot)`` column/value grids plus a reusable output
  buffer, refilled per request with one ``O(nnz)`` scatter, then swept
  with perfectly regular per-slot passes.  This is the "padded template
  schedule": the buffers and the access pattern are the class's; only
  the fill is per-request.
* ``direct`` — one-shot vectorized scatter-add, no per-class state.
* ``engine`` — the PR 5 merge-path fast path, compiling per subgraph;
  kept as an honest candidate so the tier *learns* (rather than
  assumes) that per-request compilation loses at ego sizes.
* ``reference`` — :meth:`CSRMatrix.multiply_dense`, also the
  correctness oracle during measurement: a candidate whose output
  disagrees is disqualified on the spot.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.formats import CSRMatrix
from repro.formats.ell import PAD_COLUMN

#: Max-to-mean row-length ratio boundaries between degree profiles.
FLAT_RATIO = 2.0
SKEWED_RATIO = 8.0

EXECUTORS = ("padded", "direct", "engine", "reference")


@dataclass(frozen=True)
class StructureClass:
    """One bucket of the (rows, nnz, degree-profile) class space.

    Attributes:
        row_bucket: Smallest power of two >= the subgraph's row count.
        nnz_bucket: Smallest power of four >= the subgraph's nnz
            (power-of-*four* on purpose: nnz spreads over a wider range
            than rows, and coarser buckets keep the class population
            small enough for high reuse).
        profile: ``"flat"``, ``"skewed"``, or ``"hub"``.
    """

    row_bucket: int
    nnz_bucket: int
    profile: str

    @property
    def label(self) -> str:
        return f"r{self.row_bucket}.n{self.nnz_bucket}.{self.profile}"


def _ceil_power(value: int, base: int) -> int:
    """Smallest power of ``base`` >= ``value`` (and >= 1)."""
    power = 1
    while power < value:
        power *= base
    return power


def classify(matrix: CSRMatrix) -> StructureClass:
    """The structure class of one (sub)graph adjacency."""
    lengths = matrix.row_lengths
    max_len = int(lengths.max(initial=0))
    mean_len = matrix.nnz / matrix.n_rows if matrix.n_rows else 0.0
    ratio = (max_len / mean_len) if mean_len > 0 else 1.0
    if ratio <= FLAT_RATIO:
        profile = "flat"
    elif ratio <= SKEWED_RATIO:
        profile = "skewed"
    else:
        profile = "hub"
    return StructureClass(
        row_bucket=_ceil_power(matrix.n_rows, 2),
        nnz_bucket=_ceil_power(matrix.nnz, 4),
        profile=profile,
    )


class _PaddedTemplate:
    """Reusable ELL-style grids shared by every subgraph of one class.

    Holds ``(row capacity, slot capacity)`` column/value grids and an
    output buffer sized to the class's row bucket; capacities only ever
    grow.  Not thread-safe — callers hold the owning plan's lock.
    """

    def __init__(self, row_capacity: int) -> None:
        self.row_capacity = row_capacity
        self.slot_capacity = 0
        self.columns = np.full((row_capacity, 0), PAD_COLUMN, dtype=np.int64)
        self.values = np.zeros((row_capacity, 0), dtype=np.float64)
        self.out = np.zeros((row_capacity, 0), dtype=np.float64)

    def _reserve(self, rows: int, slots: int, width: int) -> None:
        if rows > self.row_capacity:
            self.row_capacity = _ceil_power(rows, 2)
            self.slot_capacity = 0  # force grid rebuild at the new height
        if slots > self.slot_capacity:
            self.slot_capacity = slots
            self.columns = np.full(
                (self.row_capacity, slots), PAD_COLUMN, dtype=np.int64
            )
            self.values = np.zeros((self.row_capacity, slots), dtype=np.float64)
        if self.out.shape[0] < self.row_capacity or self.out.shape[1] < width:
            self.out = np.zeros((self.row_capacity, width), dtype=np.float64)

    def multiply(self, matrix: CSRMatrix, dense: np.ndarray) -> np.ndarray:
        """``matrix @ dense`` through the class template (returns a copy)."""
        lengths = matrix.row_lengths
        slots = int(lengths.max(initial=0))
        width = dense.shape[1]
        self._reserve(matrix.n_rows, slots, width)
        n, w = matrix.n_rows, width
        columns = self.columns[:n, :slots]
        values = self.values[:n, :slots]
        out = self.out[:n, :w]
        columns.fill(PAD_COLUMN)
        values.fill(0.0)
        out.fill(0.0)
        if matrix.nnz:
            # One O(nnz) scatter refills the template for this request.
            rows = np.repeat(np.arange(n, dtype=np.int64), lengths)
            starts = np.repeat(matrix.row_pointers[:-1], lengths)
            within = np.arange(matrix.nnz, dtype=np.int64) - starts
            columns[rows, within] = matrix.column_indices
            values[rows, within] = matrix.values
            for slot in range(slots):
                cols = columns[:, slot]
                valid = cols != PAD_COLUMN
                out[valid] += values[valid, slot, None] * dense[cols[valid]]
        return out.copy()


@dataclass
class ClassPlan:
    """Learned per-class state: the winning executor and its template."""

    structure_class: StructureClass
    executor: "str | None" = None
    timings: "dict[str, float]" = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    template: "_PaddedTemplate | None" = None
    lock: threading.RLock = field(default_factory=threading.RLock)

    def to_dict(self) -> dict:
        return {
            "class": self.structure_class.label,
            "executor": self.executor,
            "timings_ms": {
                name: round(seconds * 1e3, 6)
                for name, seconds in sorted(self.timings.items())
            },
            "hits": self.hits,
            "misses": self.misses,
        }


def _run_direct(matrix: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    """One-shot vectorized scatter-add (no per-class state)."""
    out = np.zeros((matrix.n_rows, dense.shape[1]), dtype=np.float64)
    if matrix.nnz:
        rows = np.repeat(
            np.arange(matrix.n_rows, dtype=np.int64), matrix.row_lengths
        )
        np.add.at(
            out, rows, matrix.values[:, None] * dense[matrix.column_indices]
        )
    return out


def _run_engine(matrix: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    """PR 5 fast path, compiling a plan for this one subgraph."""
    from repro.engine.kernels import get_engine_plan_cache

    plan = get_engine_plan_cache().get(matrix, dim=dense.shape[1])
    return plan.execute(dense)


class ClassTier:
    """Per-structure-class executor selection for one-shot subgraphs.

    The first request of each class measures every candidate executor on
    that request (recorded as a *miss*); later requests of the class run
    the winner directly (a *hit*).  ``measure_rounds`` > 1 repeats the
    bake-off on the first N requests and keeps per-executor minima,
    trading a few extra misses for steadier timings.
    """

    def __init__(
        self,
        *,
        executors: "tuple[str, ...]" = EXECUTORS,
        measure_rounds: int = 1,
        rtol: float = 1e-9,
        atol: float = 1e-12,
    ) -> None:
        unknown = set(executors) - set(EXECUTORS)
        if unknown:
            raise ValueError(f"unknown executors: {sorted(unknown)}")
        if "reference" not in executors:
            raise ValueError("'reference' must stay in the candidate set")
        if measure_rounds < 1:
            raise ValueError(
                f"measure_rounds must be >= 1, got {measure_rounds}"
            )
        self.executors = tuple(executors)
        self.measure_rounds = measure_rounds
        self.rtol = rtol
        self.atol = atol
        self._lock = threading.RLock()
        self._plans: "dict[StructureClass, ClassPlan]" = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self, matrix: CSRMatrix, dense: np.ndarray
    ) -> "tuple[np.ndarray, str, bool]":
        """``(matrix @ dense, 'class:<executor>', was it a class hit)``."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2 or dense.shape[0] != matrix.n_cols:
            raise ValueError(
                f"dimension mismatch: {matrix.shape} @ {dense.shape}"
            )
        structure_class = classify(matrix)
        with self._lock:
            plan = self._plans.get(structure_class)
            if plan is None:
                plan = ClassPlan(structure_class=structure_class)
                self._plans[structure_class] = plan
                obs.counter("sample.classtier.classes").inc()
        with plan.lock:
            if plan.executor is None:
                out = self._measure(plan, matrix, dense)
                plan.misses += 1
                with self._lock:
                    self.misses += 1
                obs.counter("sample.classtier.misses").inc()
                return out, f"class:{plan.executor}", False
            out = self._run(plan, plan.executor, matrix, dense)
            plan.hits += 1
            with self._lock:
                self.hits += 1
            obs.counter("sample.classtier.hits").inc()
            return out, f"class:{plan.executor}", True

    def _run(
        self,
        plan: ClassPlan,
        executor: str,
        matrix: CSRMatrix,
        dense: np.ndarray,
    ) -> np.ndarray:
        if executor == "padded":
            if plan.template is None:
                plan.template = _PaddedTemplate(
                    plan.structure_class.row_bucket
                )
            return plan.template.multiply(matrix, dense)
        if executor == "direct":
            return _run_direct(matrix, dense)
        if executor == "engine":
            return _run_engine(matrix, dense)
        return matrix.multiply_dense(dense)

    def _measure(
        self, plan: ClassPlan, matrix: CSRMatrix, dense: np.ndarray
    ) -> np.ndarray:
        """Bake off every candidate on this request; pick the fastest.

        ``reference`` always runs first and its output is the oracle —
        a candidate that disagrees is disqualified for the class.
        """
        ordered = ["reference"] + [
            name for name in self.executors if name != "reference"
        ]
        oracle: "np.ndarray | None" = None
        for name in ordered:
            try:
                start = time.perf_counter()
                candidate = self._run(plan, name, matrix, dense)
                elapsed = time.perf_counter() - start
            except Exception:
                obs.counter(
                    "sample.classtier.candidate_errors", executor=name
                ).inc()
                continue
            if name == "reference":
                oracle = candidate
            elif oracle is not None and not np.allclose(
                candidate, oracle, rtol=self.rtol, atol=self.atol
            ):
                obs.counter(
                    "sample.classtier.disqualified", executor=name
                ).inc()
                continue
            previous = plan.timings.get(name)
            plan.timings[name] = (
                elapsed if previous is None else min(previous, elapsed)
            )
        if oracle is None or not plan.timings:
            raise RuntimeError(
                "reference executor failed during class measurement"
            )
        rounds = plan.hits + plan.misses + 1
        if rounds >= self.measure_rounds:
            plan.executor = min(plan.timings, key=plan.timings.get)
            obs.counter(
                "sample.classtier.decided", executor=plan.executor
            ).inc()
            # Re-run the winner so the returned output came from the
            # executor the class will use from now on.
            return self._run(plan, plan.executor, matrix, dense)
        return oracle

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> "ClassTierStats":
        with self._lock:
            plans = list(self._plans.values())
            hits, misses = self.hits, self.misses
        return ClassTierStats(
            classes=len(plans),
            hits=hits,
            misses=misses,
            plans=tuple(sorted(
                (p.to_dict() for p in plans),
                key=lambda d: d["class"],
            )),
        )

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)


@dataclass(frozen=True)
class ClassTierStats:
    """A snapshot of tier effectiveness for run records."""

    classes: int
    hits: int
    misses: int
    plans: "tuple[dict, ...]" = ()

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        return {
            "classes": self.classes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "plans": list(self.plans),
        }


_default_tier = ClassTier()
_default_lock = threading.Lock()


def get_class_tier() -> ClassTier:
    """The process-wide structure-class tier (shared by serve and bench)."""
    return _default_tier


def set_class_tier(tier: ClassTier) -> ClassTier:
    """Install a new process-wide tier; returns the previous one."""
    global _default_tier
    with _default_lock:
        previous, _default_tier = _default_tier, tier
    return previous
