"""``python -m repro sample-bench`` — the ego-sampling workload bench.

Quantifies the cache collapse that motivates the structure-class tier,
then demonstrates the fix, in three phases over one Zipf-seeded ego
request stream:

1. **naive** — every sampled subgraph executes through a fresh
   fingerprint-keyed :class:`~repro.serve.plancache.PlanCache` (the
   full-graph serving stack's fast path).  Because each subgraph's
   fingerprint occurs exactly once, the measured hit rate collapses to
   ~0% — the acceptance bar is **< 5%**.
2. **classed** — the same stream through a fresh
   :class:`~repro.sample.classtier.ClassTier`.  Subgraphs bucket into
   (row, nnz, degree-profile) structure classes, the first request of a
   class bakes off the candidate executors, and every later request of
   the class reuses the winner — the acceptance bar is **>= 70%**.
3. **serve** (when ``--update-rate`` > 0, on by default) — ego requests
   flow through an epoch-managed
   :class:`~repro.serve.service.InferenceService` while a concurrent
   edge-update stream installs new graph epochs.  Every response is
   verified against a SciPy fancy-indexing oracle over the exact epoch
   it admitted under.

Every phase verifies every output against SciPy; any mismatch (or an
unresolvable epoch) is a *silent failure* and fails the bench.  The
report lands in the ``BENCH_sample.json`` trajectory with per-hop
fanout statistics, subgraph-size distributions, naive-vs-classed hit
rates, and rows/s.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.formats import CSRMatrix
from repro.graphs.datasets import load_dataset
from repro.sample.classtier import ClassTier
from repro.sample.extract import EgoSubgraph, gather_features
from repro.sample.sampler import ZipfSeedGenerator, sample_ego

# Acceptance bars (see ISSUE/ROADMAP): the naive fingerprint-keyed plan
# cache must collapse under ego traffic; the class tier must restore
# reuse.
NAIVE_HIT_RATE_MAX = 0.05
CLASSED_HIT_RATE_MIN = 0.70


@dataclass(frozen=True)
class SampleBenchConfig:
    """Tunables of one ``sample-bench`` run."""

    requests: int = 400
    seed: int = 0
    dataset: str = "Wiki-Vote"
    scale: float = 0.25
    dim: int = 16
    fanouts: "tuple[int, ...]" = (10, 5)
    zipf_s: float = 1.1
    verify: bool = True
    # Serve phase: ego requests through an epoch-managed service under a
    # concurrent Poisson edge-update stream (batches/second; 0 skips).
    # Submissions arrive open-loop at ``serve_rate`` requests/second so
    # the update stream genuinely interleaves with in-flight requests.
    serve_requests: int = 120
    serve_rate: float = 250.0
    update_rate: float = 10.0
    update_batch_max: int = 3
    compact_threshold: int = 64

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if not 0 < self.scale <= 1:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        if self.dim < 1:
            raise ValueError(f"dim must be >= 1, got {self.dim}")
        if not self.fanouts or any(f == 0 for f in self.fanouts):
            raise ValueError(
                f"fanouts must be non-empty and non-zero, got {self.fanouts}"
            )
        if self.serve_requests < 0:
            raise ValueError(
                f"serve_requests must be >= 0, got {self.serve_requests}"
            )
        if self.serve_rate <= 0:
            raise ValueError(
                f"serve_rate must be positive, got {self.serve_rate}"
            )
        if self.update_rate < 0:
            raise ValueError(
                f"update_rate must be >= 0, got {self.update_rate}"
            )


def _percentiles(values: "list[float]") -> dict:
    if not values:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    array = np.asarray(values, dtype=np.float64)
    p50, p95, p99 = np.percentile(array, [50, 95, 99])
    return {
        "p50": float(p50),
        "p95": float(p95),
        "p99": float(p99),
        "mean": float(array.mean()),
        "max": float(array.max()),
    }


def _scipy_csr(matrix: CSRMatrix):
    import scipy.sparse

    return scipy.sparse.csr_matrix(
        (matrix.values, matrix.column_indices, matrix.row_pointers),
        shape=matrix.shape,
    )


def _ego_reference(
    scipy_graph, ego: EgoSubgraph, features: np.ndarray
) -> np.ndarray:
    """SciPy fancy-indexing oracle: ``(A[nodes][:, nodes]) @ X[nodes]``."""
    induced = scipy_graph[ego.nodes][:, ego.nodes]
    return induced.toarray() @ features[ego.nodes]


@obs.instrumented
def sample_request_stream(
    matrix: CSRMatrix, config: SampleBenchConfig
) -> "list[EgoSubgraph]":
    """The shared ego request stream both executor phases replay.

    Seeds follow a degree-ranked Zipf law (hot hubs dominate, like
    production inference traffic); each request is an independent k-hop
    fanout sample.  Materializing the stream once keeps the naive and
    classed phases byte-identical, so their hit rates differ only by
    caching policy.
    """
    seed_gen = ZipfSeedGenerator.for_matrix(
        matrix,
        alpha=config.zipf_s,
        rng=np.random.default_rng(config.seed + 17),
    )
    seeds = seed_gen.draw(config.requests)
    rng = np.random.default_rng(config.seed)
    stream = []
    for seed_node in seeds:
        stream.append(
            sample_ego(
                matrix, int(seed_node), fanouts=config.fanouts, rng=rng
            )
        )
    return stream


def _sampling_stats(stream: "list[EgoSubgraph]") -> dict:
    """Per-hop fanout statistics and subgraph-size distributions."""
    hops = max(len(ego.hop_counts) for ego in stream)
    per_hop = {}
    for hop in range(hops):
        discovered = [
            ego.hop_counts[hop]
            for ego in stream
            if len(ego.hop_counts) > hop
        ]
        per_hop[str(hop)] = {
            "requests": len(discovered),
            "discovered": _percentiles([float(d) for d in discovered]),
        }
    return {
        "fanouts": list(stream[0].fanouts),
        "per_hop": per_hop,
        "subgraph_nodes": _percentiles(
            [float(ego.n_nodes) for ego in stream]
        ),
        "subgraph_nnz": _percentiles([float(ego.nnz) for ego in stream]),
        "unique_fingerprints": len(
            {ego.matrix.fingerprint(include_values=True) for ego in stream}
        ),
    }


@obs.instrumented
def run_naive_phase(
    stream: "list[EgoSubgraph]",
    features: np.ndarray,
    scipy_graph,
    config: SampleBenchConfig,
) -> dict:
    """Replay the stream through a fingerprint-keyed plan cache.

    This is exactly what the full-graph serving stack would do with ego
    traffic: compile (and cache) one merge-path plan per content
    fingerprint.  One-shot fingerprints mean every request is a miss.
    """
    from repro.serve.plancache import PlanCache

    plans = PlanCache(capacity=256)
    latencies: "list[float]" = []
    mismatches = 0
    rows = 0
    started = time.perf_counter()
    for ego in stream:
        dense = gather_features(features, ego.nodes)
        t0 = time.perf_counter()
        output = plans.get(ego.matrix, dim=config.dim).execute(dense)
        latencies.append(time.perf_counter() - t0)
        rows += ego.n_nodes
        if config.verify and not np.allclose(
            output,
            _ego_reference(scipy_graph, ego, features),
            rtol=1e-9,
            atol=1e-9,
        ):
            mismatches += 1
    elapsed = time.perf_counter() - started
    stats = plans.stats()
    return {
        "requests": len(stream),
        "plan_cache": stats.to_dict(),
        "hit_rate": stats.hit_rate,
        "elapsed_seconds": elapsed,
        "rows_per_second": rows / elapsed if elapsed > 0 else 0.0,
        "latency_ms": _percentiles([s * 1e3 for s in latencies]),
        "verified": len(stream) if config.verify else 0,
        "mismatches": mismatches,
    }


@obs.instrumented
def run_classed_phase(
    stream: "list[EgoSubgraph]",
    features: np.ndarray,
    scipy_graph,
    config: SampleBenchConfig,
) -> dict:
    """Replay the same stream through a fresh structure-class tier."""
    tier = ClassTier()
    latencies: "list[float]" = []
    backends: "dict[str, int]" = {}
    mismatches = 0
    rows = 0
    started = time.perf_counter()
    for ego in stream:
        dense = gather_features(features, ego.nodes)
        t0 = time.perf_counter()
        output, backend, _hit = tier.execute(ego.matrix, dense)
        latencies.append(time.perf_counter() - t0)
        rows += ego.n_nodes
        backends[backend] = backends.get(backend, 0) + 1
        if config.verify and not np.allclose(
            output,
            _ego_reference(scipy_graph, ego, features),
            rtol=1e-9,
            atol=1e-9,
        ):
            mismatches += 1
    elapsed = time.perf_counter() - started
    stats = tier.stats()
    return {
        "requests": len(stream),
        "tier": stats.to_dict(),
        "hit_rate": stats.hit_rate,
        "elapsed_seconds": elapsed,
        "rows_per_second": rows / elapsed if elapsed > 0 else 0.0,
        "latency_ms": _percentiles([s * 1e3 for s in latencies]),
        "backends": backends,
        "verified": len(stream) if config.verify else 0,
        "mismatches": mismatches,
    }


@obs.instrumented
def run_serve_phase(
    matrix: CSRMatrix, config: SampleBenchConfig
) -> dict:
    """Ego serving under live updates, verified epoch-pinned.

    Builds an epoch-managed :class:`InferenceService`, mutates the graph
    with a Poisson edge-update stream while ``submit_ego`` traffic
    flows, and verifies every accepted response against SciPy fancy
    indexing over the graph of the epoch the response admitted under.
    An unresolvable epoch counts as a mismatch (an epoch-consistency
    violation), never as "unverifiable".
    """
    from repro.graphs.delta import DeltaCSR, UpdatePlanner
    from repro.sample.classtier import set_class_tier
    from repro.sample.index import get_neighbor_index_cache
    from repro.serve.epoch import GraphEpochManager
    from repro.serve.service import InferenceService

    manager = GraphEpochManager(
        DeltaCSR(matrix, compact_threshold=config.compact_threshold),
        caches=(get_neighbor_index_cache(),),
    )
    epoch_graphs: "dict[int, object]" = {}
    epoch_lock = threading.Lock()

    def note(snapshot) -> None:
        with epoch_lock:
            epoch_graphs[snapshot.epoch] = _scipy_csr(snapshot.matrix)

    note(manager.current_snapshot())
    features = np.random.default_rng(config.seed + 5).random(
        (matrix.n_cols, config.dim)
    )
    seed_gen = ZipfSeedGenerator.for_matrix(
        matrix,
        alpha=config.zipf_s,
        rng=np.random.default_rng(config.seed + 23),
    )
    seeds = seed_gen.draw(config.serve_requests)

    stop = threading.Event()
    planner = UpdatePlanner(matrix)
    update_counts = {"batches": 0, "updates": 0, "errors": 0}

    def updater(service: InferenceService) -> None:
        # Wait *before* the first batch so early requests admit under the
        # seed epoch and later ones under mutated epochs — an immediate
        # first apply would advance the epoch before any request is in
        # flight, collapsing the phase back to a single served epoch.
        rng = np.random.default_rng(config.seed + 9001)
        while not stop.is_set():
            if stop.wait(rng.exponential(1.0 / config.update_rate)):
                return
            batch = planner.batch(
                rng, int(rng.integers(1, config.update_batch_max + 1))
            )
            try:
                snapshot = service.apply_updates(batch)
            except Exception:
                update_counts["errors"] += 1
                return
            note(snapshot)
            update_counts["batches"] += 1
            update_counts["updates"] += len(batch)

    previous_tier = set_class_tier(ClassTier())
    verified = mismatches = accepted = errors = 0
    epochs_served: "set[int]" = set()
    latencies: "list[float]" = []
    try:
        with InferenceService(epoch_manager=manager) as service:
            thread = None
            if config.update_rate > 0:
                thread = threading.Thread(
                    target=updater, args=(service,), daemon=True
                )
                thread.start()
            try:
                arrival_rng = np.random.default_rng(config.seed + 31)
                submissions = []
                for seed_node in seeds:
                    submissions.append(
                        service.submit_ego(
                            int(seed_node), features, fanouts=config.fanouts
                        )
                    )
                    time.sleep(
                        arrival_rng.exponential(1.0 / config.serve_rate)
                    )
                for submission in submissions:
                    response = submission.result(timeout=60)
                    if not response.ok:
                        errors += 1
                        continue
                    accepted += 1
                    latencies.append(
                        response.queue_seconds + response.service_seconds
                    )
                    epochs_served.add(response.epoch)
                    with epoch_lock:
                        pinned = epoch_graphs.get(response.epoch)
                    verified += 1
                    if pinned is None or not np.allclose(
                        response.output,
                        _ego_reference(
                            pinned, submission.subgraph, features
                        ),
                        rtol=1e-9,
                        atol=1e-9,
                    ):
                        mismatches += 1
            finally:
                stop.set()
                if thread is not None:
                    thread.join(timeout=10.0)
        tier_stats = (
            service.dispatcher.resolve_class_tier().stats().to_dict()
        )
    finally:
        set_class_tier(previous_tier)
    return {
        "requests": int(config.serve_requests),
        "accepted": accepted,
        "errors": errors,
        "verified": verified,
        "mismatches": mismatches,
        "epochs_served": len(epochs_served),
        "latency_ms": _percentiles([s * 1e3 for s in latencies]),
        "update_stream": {
            "rate_target": config.update_rate,
            **update_counts,
        },
        "class_tier": tier_stats,
        "epoch_manager": manager.stats(),
    }


@obs.instrumented
def run_bench(config: SampleBenchConfig) -> dict:
    """Run all phases and assemble the ``BENCH_sample.json`` payload."""
    graph = load_dataset(config.dataset, seed=config.seed, scale=config.scale)
    matrix = graph.adjacency
    features = np.random.default_rng(config.seed + 1).random(
        (matrix.n_cols, config.dim)
    )
    scipy_graph = _scipy_csr(matrix)

    with obs.span("sample.bench.sample", requests=config.requests):
        stream = sample_request_stream(matrix, config)
    sampling = _sampling_stats(stream)

    with obs.span("sample.bench.naive"):
        naive = run_naive_phase(stream, features, scipy_graph, config)
    with obs.span("sample.bench.classed"):
        classed = run_classed_phase(stream, features, scipy_graph, config)

    serve = None
    if config.serve_requests > 0:
        with obs.span("sample.bench.serve", requests=config.serve_requests):
            serve = run_serve_phase(matrix, config)

    silent_failures = naive["mismatches"] + classed["mismatches"] + (
        serve["mismatches"] if serve is not None else 0
    )
    acceptance = {
        "naive_hit_rate": naive["hit_rate"],
        "naive_hit_rate_max": NAIVE_HIT_RATE_MAX,
        "naive_ok": naive["hit_rate"] < NAIVE_HIT_RATE_MAX,
        "classed_hit_rate": classed["hit_rate"],
        "classed_hit_rate_min": CLASSED_HIT_RATE_MIN,
        "classed_ok": classed["hit_rate"] >= CLASSED_HIT_RATE_MIN,
        "silent_failures": silent_failures,
    }
    acceptance["passed"] = bool(
        acceptance["naive_ok"]
        and acceptance["classed_ok"]
        and silent_failures == 0
    )
    return {
        "seed": config.seed,
        "config": {
            "requests": config.requests,
            "dataset": config.dataset,
            "scale": config.scale,
            "dim": config.dim,
            "fanouts": list(config.fanouts),
            "zipf_s": config.zipf_s,
            "serve_requests": config.serve_requests,
            "serve_rate": config.serve_rate,
            "update_rate": config.update_rate,
        },
        "graph": {
            "n_nodes": matrix.n_rows,
            "nnz": matrix.nnz,
        },
        "sampling": sampling,
        "naive": naive,
        "classed": classed,
        **({"serve": serve} if serve is not None else {}),
        "acceptance": acceptance,
        "silent_failures": silent_failures,
    }


def render_summary(report: dict) -> str:
    """Human-readable one-screen summary of a sample-bench report."""
    sampling = report["sampling"]
    naive = report["naive"]
    classed = report["classed"]
    acceptance = report["acceptance"]
    speedup = (
        naive["latency_ms"]["p50"] / classed["latency_ms"]["p50"]
        if classed["latency_ms"]["p50"] > 0
        else float("inf")
    )
    lines = [
        "sample-bench",
        f"  graph     : {report['config']['dataset']} "
        f"({report['graph']['n_nodes']} nodes, {report['graph']['nnz']} nnz), "
        f"fanouts {sampling['fanouts']}",
        f"  subgraphs : p50 {sampling['subgraph_nodes']['p50']:.0f} nodes / "
        f"{sampling['subgraph_nnz']['p50']:.0f} nnz, "
        f"{sampling['unique_fingerprints']}/{naive['requests']} unique "
        "fingerprints",
        f"  naive     : plan-cache hit_rate={naive['hit_rate']:.1%} "
        f"(bar < {acceptance['naive_hit_rate_max']:.0%}), "
        f"{naive['rows_per_second']:.0f} rows/s, "
        f"p50 {naive['latency_ms']['p50']:.3f} ms",
        f"  classed   : tier hit_rate={classed['hit_rate']:.1%} "
        f"(bar >= {acceptance['classed_hit_rate_min']:.0%}), "
        f"{classed['rows_per_second']:.0f} rows/s, "
        f"p50 {classed['latency_ms']['p50']:.3f} ms "
        f"({speedup:.1f}x naive), "
        f"{classed['tier']['classes']} classes",
    ]
    serve = report.get("serve")
    if serve is not None:
        stream = serve["update_stream"]
        lines.append(
            f"  serve     : {serve['accepted']}/{serve['requests']} ok under "
            f"{stream['updates']} live update(s), "
            f"{serve['epochs_served']} epoch(s) served, tier "
            f"hit_rate={serve['class_tier']['hit_rate']:.1%}"
        )
    lines.append(
        f"  verified  : {report['naive']['verified'] + report['classed']['verified'] + (serve['verified'] if serve else 0)} "
        f"responses vs SciPy, {report['silent_failures']} silent failures"
    )
    lines.append(
        "  acceptance: " + ("PASS" if acceptance["passed"] else "FAIL")
    )
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point for ``python -m repro sample-bench``."""
    parser = argparse.ArgumentParser(
        prog="repro sample-bench",
        description=(
            "Drive a Zipf-seeded ego-sampling workload, demonstrate the "
            "fingerprint plan-cache collapse, and measure the "
            "structure-class tier's reuse, with every output verified "
            "against SciPy."
        ),
    )
    parser.add_argument("--requests", type=int, default=400)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--dataset", default="Wiki-Vote")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--dim", type=int, default=16)
    parser.add_argument(
        "--fanouts", default="10,5",
        help="comma-separated per-hop caps (-1 keeps all neighbors)",
    )
    parser.add_argument("--zipf-s", type=float, default=1.1)
    parser.add_argument(
        "--serve-requests", type=int, default=120,
        help="requests in the epoch-managed serve phase (0 skips it)",
    )
    parser.add_argument(
        "--serve-rate", type=float, default=250.0,
        help="open-loop arrival rate (requests/second) in the serve phase",
    )
    parser.add_argument(
        "--update-rate", type=float, default=10.0,
        help=(
            "Poisson rate (batches/second) of live edge updates during "
            "the serve phase; responses verify against their admitted "
            "epoch's graph"
        ),
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small CI-sized run (fewer requests, smaller graph scale)",
    )
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the per-output SciPy oracle cross-checks",
    )
    parser.add_argument(
        "--bench-dir", default=None,
        help="run-record directory (default: benchmarks/results)",
    )
    parser.add_argument(
        "--no-record", action="store_true",
        help="skip writing the BENCH_sample.json run record",
    )
    args = parser.parse_args(argv)

    requests = args.requests
    serve_requests = args.serve_requests
    scale = args.scale
    if args.quick:
        requests = min(requests, 120)
        serve_requests = min(serve_requests, 60)
        scale = min(scale, 0.25)

    config = SampleBenchConfig(
        requests=requests,
        seed=args.seed,
        dataset=args.dataset,
        scale=scale,
        dim=args.dim,
        fanouts=tuple(
            int(f.strip()) for f in args.fanouts.split(",") if f.strip()
        ),
        zipf_s=args.zipf_s,
        verify=not args.no_verify,
        serve_requests=serve_requests,
        serve_rate=args.serve_rate,
        update_rate=args.update_rate,
    )

    with obs.profiled() as session:
        report = run_bench(config)
    print(render_summary(report))

    passed = report["acceptance"]["passed"]
    if not args.no_record:
        record = obs.run_record(
            "sample",
            metrics=session.snapshot(),
            wall_seconds=session.wall_seconds,
            status="ok" if passed else "acceptance-failed",
            extra={"sample": report},
        )
        path = obs.write_run_record(record, args.bench_dir)
        print(f"run record: {path}")
    return 0 if passed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
