"""``python -m repro shard-bench`` — sharded vs. single-process rows/s.

Times the same SpMM two ways on a synthetic power-law dataset:

* **single-process** — ``matrix.multiply_dense`` in this process, the
  unsharded reference baseline (shard workers themselves default to the
  compiled engine kernel on their compacted local matrices);
* **sharded** — an ``N``-shard :class:`~repro.shard.router.ShardRouter`
  (scatter -> concurrent per-shard SpMM on worker subprocesses -> halo
  gather).

Every sharded output is cross-checked against the single-process
result; any row outside tolerance counts as an **oracle disagreement**
and fails the run.  The record (``BENCH_shard.json``) carries both
throughputs, the speedup, the partition quality stats (balance,
edge-cut, halo rows) and the per-request halo traffic in bytes — the
numbers ``docs/SHARDING.md`` explains how to read.

Acceptance (full run): zero disagreements *and* the N-shard router at
or above 2x the single-process rows/s on the 1.2M-nnz dataset.
``--quick`` keeps the small dataset and gates only on correctness (CI
smoke boxes make no throughput promises).

Usage::

    python -m repro shard-bench                  # pl-large, 4 shards
    python -m repro shard-bench --quick          # CI smoke
    python -m repro shard-bench --shards 8 --strategy edge-cut
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro import obs
from repro.graphs.generators import power_law_graph
from repro.obs.export import run_record, write_run_record
from repro.shard.partition import STRATEGIES
from repro.shard.router import ShardConfig, ShardRouter

# (name, n_nodes, nnz, max_degree) — quick uses the small dataset, the
# full run uses the 1.2M-nnz acceptance target (same sweep as
# kernel-bench).
QUICK_DATASET = ("pl-small", 2_000, 16_000, 400)
FULL_DATASET = ("pl-large", 100_000, 1_200_000, 5_000)

# The full-run acceptance threshold: N shards must at least double the
# single-process throughput.
TARGET_SPEEDUP = 2.0

_RTOL = 1e-9
_ATOL = 1e-9


def _measure(thunk, repeats: int) -> "tuple[float, np.ndarray]":
    """Best-of-``repeats`` seconds and the (last) output."""
    thunk()  # warmup: partitions, segments, page-ins
    best = float("inf")
    output = None
    for _ in range(repeats):
        start = time.perf_counter()
        output = thunk()
        best = min(best, time.perf_counter() - start)
    return best, output


@obs.instrumented
def run_shard_bench(
    *,
    quick: bool = False,
    n_shards: int = 4,
    strategy: str = "block",
    dim: int = 32,
    repeats: int = 3,
    seed: int = 2023,
    bench_dir: "str | None" = None,
    out=sys.stdout,
) -> int:
    """Measure sharded vs. single-process SpMM and record the result.

    Returns the process exit code: 0 when the oracle check finds zero
    disagreements (and, on full runs, the speedup clears
    :data:`TARGET_SPEEDUP`), 1 otherwise.
    """
    name, n_nodes, nnz, max_degree = QUICK_DATASET if quick else FULL_DATASET
    repeats = max(1, 1 if quick else repeats)
    rng = np.random.default_rng(seed)
    with obs.profiled() as session:
        matrix = power_law_graph(n_nodes, nnz, max_degree, seed=seed)
        dense = rng.standard_normal((matrix.n_cols, dim))

        single_seconds, expected = _measure(
            lambda: matrix.multiply_dense(dense), repeats
        )

        config = ShardConfig(n_shards=n_shards, strategy=strategy, seed=seed)
        with ShardRouter(config) as router:
            shard_seconds, result = _measure(
                lambda: router.execute(matrix, dense), repeats
            )
            partition = router.partition_for(matrix)
            snapshot = router.snapshot()

        row_ok = np.isclose(
            result.output, expected, rtol=_RTOL, atol=_ATOL
        ).all(axis=1)
        disagreements = int(np.count_nonzero(~row_ok))

    single_rows_per_s = matrix.n_rows / single_seconds
    shard_rows_per_s = matrix.n_rows / shard_seconds
    speedup = (
        shard_rows_per_s / single_rows_per_s if single_rows_per_s else 0.0
    )
    stats = partition.stats
    halo_bytes = stats.halo_bytes(dim)
    imbalance = stats.balance
    passed = disagreements == 0 and (quick or speedup >= TARGET_SPEEDUP)
    status = "ok" if passed else "failed"

    shard_doc = {
        "dataset": name,
        "n_rows": matrix.n_rows,
        "nnz": matrix.nnz,
        "dim": dim,
        "n_shards": n_shards,
        "strategy": strategy,
        "single_process": {
            "seconds": single_seconds,
            "rows_per_s": single_rows_per_s,
        },
        "sharded": {
            "seconds": shard_seconds,
            "rows_per_s": shard_rows_per_s,
            "kernel_seconds": result.kernel_seconds,
            "ipc_seconds": result.ipc_seconds,
            "scatter_seconds": result.scatter_seconds,
            "halo_seconds": result.halo_seconds,
            "shards_used": result.shards_used,
            "replays": snapshot["replays"],
        },
        "speedup": speedup,
        "target_speedup": None if quick else TARGET_SPEEDUP,
        "halo": {
            "halo_rows": stats.halo_rows,
            "halo_fraction": stats.halo_fraction,
            "bytes_per_request": halo_bytes,
            "gather_rows": stats.gather_rows,
            "distinct_rows": stats.distinct_rows,
        },
        "partition": stats.to_dict(),
        "imbalance": imbalance,
        "oracle": {
            "disagreements": disagreements,
            "checked_rows": matrix.n_rows,
        },
        "zero_copy": snapshot["zero_copy"],
    }

    print(
        f"{name:10s} single-process {single_seconds * 1e3:9.2f} ms  "
        f"{single_rows_per_s:12.0f} rows/s",
        file=out,
    )
    print(
        f"{name:10s} {n_shards}-shard[{strategy}] "
        f"{shard_seconds * 1e3:9.2f} ms  "
        f"{shard_rows_per_s:12.0f} rows/s  {speedup:5.2f}x  "
        f"halo {stats.halo_rows} rows / {halo_bytes} B  "
        f"imbalance {imbalance:.3f}  "
        f"disagreements {disagreements}",
        file=out,
    )

    record = run_record(
        "shard",
        metrics=session.snapshot(),
        wall_seconds=session.wall_seconds,
        status=status,
        extra={
            "quick": quick,
            "seed": seed,
            "repeats": repeats,
            "shard": shard_doc,
        },
    )
    path = write_run_record(record, bench_dir)
    print(f"recorded {path}", file=out)
    if not passed:
        reason = (
            f"{disagreements} oracle disagreement(s)"
            if disagreements
            else f"speedup {speedup:.2f}x below the "
            f"{TARGET_SPEEDUP:.1f}x target"
        )
        print(f"FAILED: {reason}", file=out)
    return 0 if passed else 1


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point for ``python -m repro shard-bench``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro shard-bench",
        description="Measure sharded vs. single-process SpMM rows/s and "
        "record BENCH_shard.json.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small dataset, one repeat, no speedup gate (CI smoke)",
    )
    parser.add_argument(
        "--shards", type=int, default=4, help="shard count (default 4)"
    )
    parser.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="block",
        help="partitioning strategy",
    )
    parser.add_argument("--dim", type=int, default=32, help="dense width")
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (best-of)"
    )
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument(
        "--bench-dir",
        default=None,
        help="run-record directory (default: benchmarks/results or "
        "$REPRO_BENCH_DIR)",
    )
    args = parser.parse_args(argv)
    return run_shard_bench(
        quick=args.quick,
        n_shards=args.shards,
        strategy=args.strategy,
        dim=args.dim,
        repeats=args.repeats,
        seed=args.seed,
        bench_dir=args.bench_dir,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
