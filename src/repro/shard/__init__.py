"""Sharded multi-process serving: graph partitioning + halo exchange.

The package splits one graph across ``N`` supervised worker-pool
processes and reassembles per-shard partial SpMM outputs with a halo
gather — the paper's complete/partial row split lifted from threads to
processes.  See :mod:`repro.shard.partition` for the partitioners and
halo map, :mod:`repro.shard.router` for the scatter/execute/gather
router, and ``docs/SHARDING.md`` for the protocol and operations guide.
"""

from repro.shard.partition import (
    STRATEGIES,
    GraphPartition,
    PartitionStats,
    ShardPart,
    build_partition,
    contiguous_block_assignment,
    edge_cut_assignment,
    partition_graph,
)
from repro.shard.router import ShardConfig, ShardResult, ShardRouter

__all__ = [
    "STRATEGIES",
    "GraphPartition",
    "PartitionStats",
    "ShardPart",
    "build_partition",
    "contiguous_block_assignment",
    "edge_cut_assignment",
    "partition_graph",
    "ShardConfig",
    "ShardResult",
    "ShardRouter",
]
