"""The shard router: scatter -> per-shard SpMM -> halo gather.

:class:`ShardRouter` fronts ``N`` single-shard
:class:`~repro.serve.procpool.ProcessWorkerPool` instances, one per
graph shard.  Each shard's worker subprocesses attach zero-copy to that
shard's *local* CSR published in shared memory; nothing ever ships the
global graph.  A request executes as:

1. **partition** — the graph's partition is resolved from a
   value-fingerprint-keyed LRU (a new epoch means a new fingerprint,
   so live-graph compaction re-partitions automatically);
2. **scatter** — the dense operand is sliced into per-shard
   owned-vertex blocks (``rtrace`` stage ``scatter``);
3. **shard SpMM** — every non-empty shard runs its local
   ``A_s @ X_s`` concurrently on its own pool, by default through the
   engine fast path (:func:`~repro.engine.kernels.engine_spmm`) whose
   merge-path planner thrives on the compacted per-shard matrices; a
   crashed shard worker is *re-replayed* on its respawned successor
   (bounded by ``replay_budget``) while the other shards' results
   stand;
4. **halo gather** — per-shard partial outputs are summed into the
   global result (``rtrace`` stage ``halo``): complete rows arrive from
   exactly one shard, boundary rows accumulate one partial per owning
   shard — the paper's partial-row accumulation across processes.

The router implements the same execution protocol as a single
``ProcessWorkerPool`` (``execute`` / ``is_quarantined`` /
``memory_pressure`` / ``supervisor.exhausted`` / ``snapshot``), so
:class:`~repro.serve.service.InferenceService` drives it through the
identical batch path as ``isolation="process"``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, replace

import numpy as np

from repro import obs
from repro.formats.csr import CSRMatrix
from repro.obs import rtrace
from repro.serve.procpool import (
    PoolError,
    ProcessWorkerPool,
    ProcPoolConfig,
    QuarantinedError,
    WorkerCrashError,
)
from repro.shard.partition import (
    STRATEGIES,
    GraphPartition,
    partition_graph,
)


@dataclass(frozen=True)
class ShardConfig:
    """Tunables of one :class:`ShardRouter`.

    Attributes:
        n_shards: Graph shards (one worker pool each).
        strategy: Partitioning strategy (see
            :data:`repro.shard.partition.STRATEGIES`).
        workers_per_shard: Worker subprocesses per shard pool.
        replay_budget: Re-replays of one shard's sub-batch after its
            worker crashes mid-batch (the respawned worker gets the
            retry); the batch fails with the crash only when the budget
            is spent or the shard's pool is exhausted.
        partition_cache_capacity: Partitions kept per router (per
            distinct graph fingerprint; LRU beyond this — live-graph
            epochs arrive with fresh fingerprints and age old ones out).
        seed: Tie-breaking seed for the edge-cut strategy.
        worker_kernel: SpMM kernel the shard workers run.  Defaults to
            ``"engine"`` — the compacted per-shard matrices are exactly
            what the engine fast path's merge-path planner is built
            for, and partition-aware kernels are where the shard tier's
            single-host speedup comes from; ``"reference"`` pins the
            ground-truth kernel instead.
        result_transport: How per-shard partial outputs return to the
            router (``"shm"`` default — boundary-heavy partitions ship
            close to ``n_shards`` full outputs per request, so skipping
            the pickle/pipe round-trip is the difference between halo
            exchange scaling and drowning; ``"pipe"`` for the classic
            transport).
    """

    n_shards: int = 2
    strategy: str = "block"
    workers_per_shard: int = 1
    replay_budget: int = 2
    partition_cache_capacity: int = 4
    seed: int = 0
    worker_kernel: str = "engine"
    result_transport: str = "shm"

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; "
                f"expected one of {STRATEGIES}"
            )
        if self.workers_per_shard < 1:
            raise ValueError(
                f"workers_per_shard must be >= 1, "
                f"got {self.workers_per_shard}"
            )
        if self.replay_budget < 0:
            raise ValueError(
                f"replay_budget must be >= 0, got {self.replay_budget}"
            )
        if self.partition_cache_capacity < 1:
            raise ValueError(
                "partition_cache_capacity must be >= 1, "
                f"got {self.partition_cache_capacity}"
            )
        if self.worker_kernel not in ("reference", "engine"):
            raise ValueError(
                "worker_kernel must be 'reference' or 'engine', "
                f"got {self.worker_kernel!r}"
            )
        if self.result_transport not in ("pipe", "shm"):
            raise ValueError(
                "result_transport must be 'pipe' or 'shm', "
                f"got {self.result_transport!r}"
            )


@dataclass
class ShardResult:
    """One successful sharded execution (pool-protocol result shape).

    Attributes:
        output: Gathered global result (``n_rows x width``).
        backend: Always ``"shard"``.
        fallback_used: Always ``False`` (protocol compatibility).
        kernel_seconds: Slowest shard's worker-reported kernel time
            (the shards run concurrently, so the max gates the batch).
        ipc_seconds: Parallel-section wall time beyond the slowest
            kernel: pipe transport, scheduling, slower-shard skew.
        scatter_seconds: Operand slicing into per-shard blocks.
        halo_seconds: Halo gather (partial-row summation).
        halo_bytes: Extra gather traffic attributable to boundary rows
            for this request's width (see
            :meth:`~repro.shard.partition.PartitionStats.halo_bytes`).
        copied_bytes: Graph bytes copied per request — always 0; shard
            workers attach to shared segments.
        shards_used: Shards that executed (empty shards are skipped).
        replays: Sub-batch re-replays that recovered crashed shards
            during this execution.
        worker_id: Protocol compatibility (always -1; the per-shard
            worker ids live in the shard pools).
    """

    output: np.ndarray
    backend: str = "shard"
    fallback_used: bool = False
    kernel_seconds: float = 0.0
    ipc_seconds: float = 0.0
    scatter_seconds: float = 0.0
    halo_seconds: float = 0.0
    halo_bytes: int = 0
    copied_bytes: int = 0
    shards_used: int = 0
    replays: int = 0
    worker_id: int = -1


class _SupervisorView:
    """Aggregate supervisor facade over the per-shard pools.

    The service's admission path asks one question —
    ``supervisor.exhausted`` — and a sharded batch needs *every* shard,
    so the router is exhausted as soon as any shard's pool is.
    """

    def __init__(self, router: "ShardRouter") -> None:
        self._router = router

    @property
    def exhausted(self) -> bool:
        """True when any shard's restart budget is spent."""
        return any(
            pool.supervisor.exhausted for pool in self._router.pools
        )


class ShardRouter:
    """Sharded multi-process SpMM executor (see module docstring).

    Args:
        config: Router tunables; a default 2-shard config when omitted.
        proc_config: Template for the per-shard pools (its ``n_workers``
            is overridden by ``config.workers_per_shard``).

    Use as a context manager or call :meth:`start`/:meth:`close`.
    Thread-safe: concurrent :meth:`execute` calls scatter onto the
    shard pools independently.
    """

    def __init__(
        self,
        config: "ShardConfig | None" = None,
        proc_config: "ProcPoolConfig | None" = None,
    ) -> None:
        self.config = config or ShardConfig()
        template = proc_config or ProcPoolConfig()
        self._proc_config = replace(
            template,
            n_workers=self.config.workers_per_shard,
            kernel=self.config.worker_kernel,
            result_transport=self.config.result_transport,
        )
        self.pools: "list[ProcessWorkerPool]" = []
        self._lock = threading.Lock()
        # Value-fingerprint -> (structural fingerprint, partition); the
        # structural key is what epoch retirement invalidates by.
        self._partitions: (
            "OrderedDict[str, tuple[str, GraphPartition]]"
        ) = OrderedDict()
        self._started = False
        self._closed = False
        self.executed = 0
        self.replays = 0
        self._replay_times: "list[float]" = []
        self._last_stats: "dict | None" = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardRouter":
        """Fork the per-shard worker pools (idempotent)."""
        with self._lock:
            if self._closed:
                raise PoolError("router is closed")
            if self._started:
                return self
            self._started = True
        self.pools = [
            ProcessWorkerPool(self._proc_config)
            for _ in range(self.config.n_shards)
        ]
        for pool in self.pools:
            pool.start()
        obs.gauge("shard.router.shards").set(float(self.config.n_shards))
        return self

    def close(self) -> None:
        """Shut down every shard pool and drop cached partitions."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._partitions.clear()
        for pool in self.pools:
            pool.close()

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Pool protocol (what InferenceService drives)
    # ------------------------------------------------------------------
    @property
    def supervisor(self) -> _SupervisorView:
        """Aggregate exhaustion view over the shard pools."""
        return _SupervisorView(self)

    def is_quarantined(self, key: "str | None") -> bool:
        """Whether any shard pool has quarantined ``key`` as poison."""
        return any(pool.is_quarantined(key) for pool in self.pools)

    def memory_pressure(self) -> bool:
        """Whether any shard pool reports admission-level RSS pressure."""
        return any(pool.memory_pressure() for pool in self.pools)

    # ------------------------------------------------------------------
    # Partition cache
    # ------------------------------------------------------------------
    def partition_for(self, matrix: CSRMatrix) -> GraphPartition:
        """Resolve (or build) the partition for ``matrix``.

        Keyed by the value fingerprint — the same identity the shard
        pools key their shared segments on — so a live-graph epoch with
        new content re-partitions exactly once, and repeated requests
        against one epoch reuse the plan.
        """
        key = matrix.fingerprint(include_values=True)
        with self._lock:
            hit = self._partitions.get(key)
            if hit is not None:
                self._partitions.move_to_end(key)
                obs.counter("shard.router.partition_hits").inc()
                return hit[1]
        partition = partition_graph(
            matrix,
            self.config.n_shards,
            strategy=self.config.strategy,
            seed=self.config.seed,
        )
        structural = matrix.fingerprint()
        with self._lock:
            self._partitions[key] = (structural, partition)
            self._partitions.move_to_end(key)
            while len(self._partitions) > self.config.partition_cache_capacity:
                self._partitions.popitem(last=False)
            self._last_stats = partition.stats.to_dict()
        obs.counter("shard.router.partition_misses").inc()
        return partition

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop cached partitions for a retired graph fingerprint.

        Epoch-manager cache hook
        (:meth:`repro.serve.epoch.GraphEpochManager.register_cache`):
        called with the retired snapshot's structural fingerprint when
        its last lease drains.  Entries match by either their value key
        or their recorded structural fingerprint; returns the number of
        partitions dropped.
        """
        dropped = 0
        with self._lock:
            for key in [
                k
                for k, (structural, _) in self._partitions.items()
                if k == fingerprint or structural == fingerprint
            ]:
                del self._partitions[key]
                dropped += 1
        if dropped:
            obs.counter("shard.router.partitions_invalidated").inc(dropped)
        return dropped

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        matrix: CSRMatrix,
        stacked: np.ndarray,
        *,
        keys: "tuple[str, ...]" = (),
        timeout: "float | None" = None,
    ) -> ShardResult:
        """Run ``matrix @ stacked`` across the shards (see module doc).

        Args:
            matrix: Global sparse operand; partitioned (cached) and
                served from per-shard shared segments.
            stacked: Column-stacked dense operands of the batch.
            keys: Poison keys of the batch's members; forwarded to
                every shard pool so repeat killers are quarantined.
            timeout: Batch budget in seconds, shared by all shards
                (each shard's reaper enforces it by SIGKILL).

        Raises:
            QuarantinedError: A member's content is quarantined on some
                shard.
            WorkerCrashError: A shard's worker died and the replay
                budget (or the shard pool's restart budget) is spent.
            PoolError: Transport/execution errors, or a router that is
                not started.
        """
        if not self._started or self._closed:
            raise PoolError("shard router is not running")
        for key in keys:
            if self.is_quarantined(key):
                raise QuarantinedError(
                    "request content is quarantined after repeatedly "
                    "killing shard workers"
                )
        started = time.monotonic()
        deadline = started + timeout if timeout is not None else None
        partition = self.partition_for(matrix)
        width = int(stacked.shape[1])

        scatter_started = time.perf_counter()
        with rtrace.stage("scatter"):
            operands = partition.scatter(stacked)
        scatter_seconds = time.perf_counter() - scatter_started

        active = [
            shard
            for shard in range(partition.n_shards)
            if partition.shards[shard].nnz > 0
        ]
        results: "list[object | None]" = [None] * partition.n_shards
        errors: "list[tuple[int, BaseException] | None]" = (
            [None] * partition.n_shards
        )
        replays = [0]
        replay_lock = threading.Lock()

        def run_shard(shard: int) -> None:
            part = partition.shards[shard]
            attempts = 0
            while True:
                remaining = (
                    max(0.001, deadline - time.monotonic())
                    if deadline is not None
                    else None
                )
                try:
                    results[shard] = self.pools[shard].execute(
                        part.matrix,
                        operands[shard],
                        keys=keys,
                        timeout=remaining,
                    )
                    return
                except WorkerCrashError as exc:
                    exhausted = (
                        exc.reason == "exhausted"
                        or self.pools[shard].supervisor.exhausted
                    )
                    if exhausted or attempts >= self.config.replay_budget:
                        errors[shard] = (shard, exc)
                        return
                    attempts += 1
                    with replay_lock:
                        replays[0] += 1
                    obs.counter("shard.router.replays").inc()
                    # The supervisor is already respawning the dead
                    # worker; the retry blocks in _acquire_slot until
                    # the successor is live, then re-runs this shard's
                    # sub-batch — the other shards' results stand.
                except PoolError as exc:  # Quarantined/transport: terminal
                    errors[shard] = (shard, exc)
                    return
                except Exception as exc:  # noqa: BLE001 - report, never hang
                    errors[shard] = (shard, exc)
                    return

        parallel_started = time.perf_counter()
        threads = [
            threading.Thread(
                target=run_shard, args=(shard,), name=f"shard-exec-{shard}"
            )
            for shard in active
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        parallel_seconds = time.perf_counter() - parallel_started

        failure = self._classify_failures(errors)
        if failure is not None:
            for result in results:
                if result is not None:
                    result.release()
            raise failure

        with self._lock:
            self.executed += 1
            self.replays += replays[0]
            if replays[0]:
                self._replay_times.append(time.monotonic())
                del self._replay_times[:-256]

        halo_started = time.perf_counter()
        with rtrace.stage("halo"):
            output = partition.gather(
                [
                    result.output if result is not None else None
                    for result in results
                ],
                width,
            )
        halo_seconds = time.perf_counter() - halo_started
        for result in results:
            if result is not None:
                # Gather summed out of the shm views; hand the warm
                # blocks back to the shard pools for the next request.
                result.release()

        kernel_seconds = max(
            (results[shard].kernel_seconds for shard in active),
            default=0.0,
        )
        ipc_seconds = max(0.0, parallel_seconds - kernel_seconds)
        rtrace.attribute("kernel", kernel_seconds)
        rtrace.attribute("ipc", ipc_seconds)
        halo_bytes = partition.stats.halo_bytes(width)
        obs.counter("shard.router.executed").inc()
        obs.histogram("shard.router.halo_bytes").observe(float(halo_bytes))
        obs.histogram("shard.router.halo_seconds").observe(halo_seconds)
        return ShardResult(
            output=output,
            kernel_seconds=kernel_seconds,
            ipc_seconds=ipc_seconds,
            scatter_seconds=scatter_seconds,
            halo_seconds=halo_seconds,
            halo_bytes=halo_bytes,
            shards_used=len(active),
            replays=replays[0],
        )

    def _classify_failures(
        self,
        errors: "list[tuple[int, BaseException] | None]",
    ) -> "BaseException | None":
        """Pick the batch-level failure from per-shard errors.

        Severity order: quarantine (terminal content verdict) beats
        crash (terminal infrastructure verdict) beats transport error.
        The winning error is re-raised with the shard id prefixed so
        operators can see *which* failure domain broke.
        """
        failures = [entry for entry in errors if entry is not None]
        if not failures:
            return None

        def rank(entry: "tuple[int, BaseException]") -> int:
            _, exc = entry
            if isinstance(exc, QuarantinedError):
                return 0
            if isinstance(exc, WorkerCrashError):
                return 1
            return 2

        failures.sort(key=rank)
        shard, exc = failures[0]
        message = f"shard {shard}: {exc}"
        if isinstance(exc, QuarantinedError):
            raised: BaseException = QuarantinedError(message)
        elif isinstance(exc, WorkerCrashError):
            raised = WorkerCrashError(message, reason=exc.reason)
        elif isinstance(exc, PoolError):
            raised = type(exc)(message)
        else:
            raised = PoolError(message)
        raised.__cause__ = exc
        return raised

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def replays_recent(self, window_seconds: float) -> int:
        """Replayed sub-batches within the trailing window."""
        cutoff = time.monotonic() - window_seconds
        with self._lock:
            return sum(1 for at in self._replay_times if at >= cutoff)

    def snapshot(self) -> dict:
        """Machine-readable router state for health reports and benches.

        Mirrors the pool snapshot protocol (``isolation`` discriminates)
        and adds per-shard pool snapshots plus the most recent
        partition's quality stats.
        """
        with self._lock:
            executed = self.executed
            replays = self.replays
            partitions_cached = len(self._partitions)
            last_stats = self._last_stats
        shard_snapshots = []
        for shard, pool in enumerate(self.pools):
            pool_snapshot = pool.snapshot()
            pool_snapshot["supervisor"]["recent_crashes"] = (
                pool.supervisor.recent_crashes(30.0)
            )
            shard_snapshots.append(
                {"shard_id": shard, **pool_snapshot}
            )
        exhausted_shards = [
            snap["shard_id"]
            for snap in shard_snapshots
            if snap["supervisor"].get("exhausted")
        ]
        return {
            "isolation": "shard",
            "n_shards": self.config.n_shards,
            "strategy": self.config.strategy,
            "executed": executed,
            "replays": replays,
            "replays_recent": self.replays_recent(30.0),
            "partitions_cached": partitions_cached,
            "partition": last_stats,
            "supervisor": {
                "exhausted": bool(exhausted_shards),
                "exhausted_shards": exhausted_shards,
                "restart_budget": self._proc_config.restart_budget,
                "crashes": sum(
                    snap["supervisor"].get("crashes", 0)
                    for snap in shard_snapshots
                ),
                "restarts": sum(
                    snap["supervisor"].get("restarts", 0)
                    for snap in shard_snapshots
                ),
            },
            "quarantine": {
                "active": sum(
                    snap["quarantine"]["active"] for snap in shard_snapshots
                ),
            },
            "memory": {
                "total_rss_bytes": sum(
                    snap["memory"]["total_rss_bytes"]
                    for snap in shard_snapshots
                ),
                "pressure": any(
                    snap["memory"]["pressure"] for snap in shard_snapshots
                ),
            },
            "zero_copy": {
                "per_request_graph_bytes_copied": max(
                    (
                        snap["zero_copy"]["per_request_graph_bytes_copied"]
                        for snap in shard_snapshots
                    ),
                    default=0,
                ),
            },
            "shards": shard_snapshots,
        }
