"""Graph partitioners for sharded multi-process serving.

A partition assigns every *column* (source vertex) of the adjacency
matrix to exactly one shard; the nonzero ``(row, col)`` travels with its
column's owner.  Each shard therefore holds a **local CSR** containing
only the edges whose source it owns, with rows compacted to the shard's
*present rows* (global rows that keep at least one owned nonzero) and
columns relabeled to the shard's owned-vertex range.  Serving a request
then maps onto the paper's merge-path row split, across processes:

* a **complete row** has all of its neighbors on one shard — exactly one
  shard produces its full output row;
* a **boundary (halo) row** has neighbors on two or more shards — each
  owner produces a *partial* row, and the gather pass sums the partials
  (the paper's partial-row accumulation, crossing process boundaries
  instead of thread boundaries).

The **halo map** (:attr:`GraphPartition.halo_rows`) lists the boundary
rows; :class:`PartitionStats` quantifies partition quality (work
balance, edge-cut fraction, halo traffic).

Two strategies are provided:

* :func:`contiguous_block_assignment` — contiguous column blocks split
  at balanced cumulative-nnz boundaries (the merge-path even split
  applied to shard boundaries).  O(nnz), the default for serving.
* :func:`edge_cut_assignment` — greedy affinity placement that walks
  columns in degree order and co-locates columns sharing rows, trading
  partition time for a smaller halo on clustered graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.formats.csr import INDEX_DTYPE, VALUE_DTYPE, CSRMatrix

STRATEGIES = ("block", "edge-cut")

# Greedy affinity scoring skips rows wider than this: a hub row touches
# nearly every shard no matter where its columns land, so scoring it per
# column would cost O(degree^2) for no cut improvement.
_EDGE_CUT_HUB_DEGREE = 256


@dataclass(frozen=True)
class ShardPart:
    """One shard's slice of the graph.

    Attributes:
        shard_id: Position of this shard in the partition.
        matrix: Local CSR over (present rows x owned columns); row and
            column ids are *local* (compacted), translated by ``rows``
            and ``cols``.  Carries the parent matrix's ``version`` so
            per-shard segment caches stay epoch-precise.
        rows: Local row -> global row (sorted, unique).  These are the
            rows this shard contributes (partial or complete) output to.
        cols: Local column -> global column (sorted, unique).  These are
            the vertices this shard owns; the router scatters exactly
            these rows of the dense operand to the shard.
    """

    shard_id: int
    matrix: CSRMatrix
    rows: np.ndarray
    cols: np.ndarray

    @property
    def nnz(self) -> int:
        """Edges stored on this shard."""
        return int(self.matrix.nnz)


@dataclass(frozen=True)
class PartitionStats:
    """Quality measures of one :class:`GraphPartition`.

    Attributes:
        n_shards: Shard count.
        strategy: Assignment strategy that produced the partition.
        nnz_per_shard: Edges per shard (the work measure).
        rows_per_shard: Present (output-contributing) rows per shard.
        cols_per_shard: Owned columns per shard.
        balance: ``max(nnz_per_shard) / mean(nnz_per_shard)`` — 1.0 is a
            perfect split; the slowest shard gates the batch, so this is
            the parallel-efficiency ceiling.
        edge_cut: Fraction of edges whose endpoint owners differ
            (``assignment[row] != assignment[col]``; for non-square
            matrices, the fraction of edges landing in halo rows).
        halo_rows: Rows contributed by >= 2 shards (partial rows).
        halo_fraction: ``halo_rows`` over rows with any nonzero.
        distinct_rows: Rows with any nonzero (>= 1 contributing shard).
        gather_rows: Sum of per-shard present rows — output rows
            crossing the pipe on the gather pass, counting each halo
            row once per contributing shard.
    """

    n_shards: int
    strategy: str
    nnz_per_shard: "tuple[int, ...]"
    rows_per_shard: "tuple[int, ...]"
    cols_per_shard: "tuple[int, ...]"
    balance: float
    edge_cut: float
    halo_rows: int
    halo_fraction: float
    distinct_rows: int
    gather_rows: int

    def halo_bytes(self, width: int) -> int:
        """Extra gather traffic (bytes) versus a halo-free partition.

        Each boundary row crosses the pipe once per contributing shard;
        a perfect partition would move every nonzero output row exactly
        once.  The surplus copies, times the dense row footprint, price
        the halo exchange for a ``width``-column request.
        """
        extra = max(0, self.gather_rows - self.distinct_rows)
        return extra * int(width) * np.dtype(VALUE_DTYPE).itemsize

    def to_dict(self) -> dict:
        """JSON-ready form for snapshots and run records."""
        return {
            "n_shards": self.n_shards,
            "strategy": self.strategy,
            "nnz_per_shard": list(self.nnz_per_shard),
            "rows_per_shard": list(self.rows_per_shard),
            "cols_per_shard": list(self.cols_per_shard),
            "balance": self.balance,
            "edge_cut": self.edge_cut,
            "halo_rows": self.halo_rows,
            "halo_fraction": self.halo_fraction,
            "distinct_rows": self.distinct_rows,
            "gather_rows": self.gather_rows,
        }


@dataclass(frozen=True)
class GraphPartition:
    """A sharded view of one CSR matrix, ready for scatter/gather.

    Attributes:
        n_rows: Global row count.
        n_cols: Global column count.
        n_shards: Shard count.
        strategy: Assignment strategy label (see :data:`STRATEGIES`).
        assignment: Global column -> owning shard id.
        shards: Per-shard local slices (see :class:`ShardPart`).
        halo_rows: Sorted global row ids contributed by >= 2 shards —
            the boundary rows whose partial outputs the gather pass
            must sum (the paper's partial rows, across processes).
        row_shard_counts: Per global row, the number of contributing
            shards (0 for empty rows, 1 for complete rows, >= 2 for
            halo rows).
        stats: Partition quality measures.
    """

    n_rows: int
    n_cols: int
    n_shards: int
    strategy: str
    assignment: np.ndarray
    shards: "tuple[ShardPart, ...]"
    halo_rows: np.ndarray
    row_shard_counts: np.ndarray
    stats: PartitionStats

    def scatter(self, dense: np.ndarray) -> "list[np.ndarray]":
        """Slice the dense operand into per-shard owned-vertex blocks.

        Returns one contiguous ``(len(part.cols), width)`` array per
        shard: exactly the operand rows the shard's local columns
        reference, in local column order.  Together the slices cover
        ``dense`` once — scatter traffic is ~``n_cols/n_shards`` rows
        per shard, not a full broadcast.
        """
        dense = np.asarray(dense, dtype=VALUE_DTYPE)
        if dense.ndim != 2 or dense.shape[0] != self.n_cols:
            raise ValueError(
                f"operand must be 2-D with {self.n_cols} rows, "
                f"got shape {dense.shape}"
            )
        return [np.ascontiguousarray(dense[part.cols]) for part in self.shards]

    def gather(
        self,
        outputs: "list[np.ndarray | None]",
        width: int,
        out: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Sum per-shard partial outputs into the global result.

        This is the halo exchange: complete rows are written by their
        single owner; boundary rows accumulate one partial contribution
        per owning shard.  ``outputs[s]`` must be ``None`` exactly when
        shard ``s`` holds no edges.
        """
        if len(outputs) != self.n_shards:
            raise ValueError(
                f"expected {self.n_shards} shard outputs, got {len(outputs)}"
            )
        if out is None:
            out = np.zeros((self.n_rows, int(width)), dtype=VALUE_DTYPE)
        for part, partial in zip(self.shards, outputs):
            if partial is None:
                continue
            if partial.shape != (len(part.rows), int(width)):
                raise ValueError(
                    f"shard {part.shard_id} output has shape "
                    f"{partial.shape}, expected {(len(part.rows), width)}"
                )
            # Present rows are unique per shard, so fancy-index += is a
            # well-defined single accumulation per (shard, row).
            out[part.rows] += partial
        return out

    def spmm(self, dense: np.ndarray) -> np.ndarray:
        """In-process sharded SpMM: scatter -> per-shard SpMM -> gather.

        The single-process reference for the distributed data path; the
        property tests pin it bit-for-bit against the scipy oracle on
        integer-valued inputs, and the router must agree with it.
        """
        operands = self.scatter(dense)
        width = int(np.asarray(dense).shape[1])
        outputs: "list[np.ndarray | None]" = [
            part.matrix.multiply_dense(block) if part.nnz else None
            for part, block in zip(self.shards, operands)
        ]
        return self.gather(outputs, width)


def contiguous_block_assignment(
    matrix: CSRMatrix, n_shards: int
) -> np.ndarray:
    """Assign contiguous column blocks balanced by cumulative nnz.

    The column axis is split at the ``k * nnz_total / n_shards``
    boundaries of the per-column nnz prefix sum — the merge-path even
    split applied to shard boundaries.  Empty columns carry a small
    weight so featureless vertices still spread across shards.
    """
    _check_shards(n_shards)
    weights = np.bincount(
        matrix.column_indices, minlength=matrix.n_cols
    ).astype(np.float64)
    # Tiny per-column weight: ties the split to column count when the
    # graph is empty and spreads zero-degree vertices.
    weights += 1.0 / max(1, matrix.n_cols)
    cumulative = np.cumsum(weights)
    total = cumulative[-1] if matrix.n_cols else 0.0
    assignment = np.zeros(matrix.n_cols, dtype=INDEX_DTYPE)
    if matrix.n_cols == 0 or n_shards == 1:
        return assignment
    targets = total * np.arange(1, n_shards) / n_shards
    cuts = np.searchsorted(cumulative, targets, side="left")
    bounds = np.concatenate(([0], cuts, [matrix.n_cols]))
    for shard in range(n_shards):
        assignment[bounds[shard] : bounds[shard + 1]] = shard
    return assignment


def edge_cut_assignment(
    matrix: CSRMatrix,
    n_shards: int,
    *,
    seed: int = 0,
    slack: float = 1.2,
) -> np.ndarray:
    """Greedy affinity assignment minimising the edge cut.

    Columns are visited in descending degree order (random-tiebroken by
    ``seed``); each is placed on the shard already owning the most of
    its row-neighbours' columns, subject to a per-shard load cap of
    ``slack * nnz_total / n_shards``.  Rows wider than a hub threshold
    are skipped during scoring — a hub row spans shards regardless of
    placement, so scoring it buys no cut improvement at quadratic cost.
    """
    _check_shards(n_shards)
    if not 1.0 <= slack:
        raise ValueError(f"slack must be >= 1.0, got {slack}")
    n_cols = matrix.n_cols
    assignment = np.full(n_cols, -1, dtype=INDEX_DTYPE)
    if n_cols == 0:
        return np.zeros(0, dtype=INDEX_DTYPE)
    col_degree = np.bincount(matrix.column_indices, minlength=n_cols)
    # Column -> rows adjacency (CSC-style), built once.
    order = np.argsort(matrix.column_indices, kind="stable")
    rows_by_col = np.repeat(
        np.arange(matrix.n_rows, dtype=INDEX_DTYPE),
        matrix.row_lengths,
    )[order]
    col_ptr = np.concatenate(([0], np.cumsum(col_degree)))
    row_lengths = matrix.row_lengths
    rng = np.random.default_rng(seed)
    visit = np.lexsort((rng.random(n_cols), -col_degree.astype(np.float64)))
    capacity = slack * max(1.0, matrix.nnz) / n_shards
    load = np.zeros(n_shards, dtype=np.float64)
    scores = np.zeros(n_shards, dtype=np.float64)
    for col in visit:
        scores[:] = 0.0
        for row in rows_by_col[col_ptr[col] : col_ptr[col + 1]]:
            if row_lengths[row] > _EDGE_CUT_HUB_DEGREE:
                continue
            neighbours = matrix.column_indices[
                matrix.row_pointers[row] : matrix.row_pointers[row + 1]
            ]
            placed = assignment[neighbours]
            placed = placed[placed >= 0]
            if len(placed):
                scores += np.bincount(placed, minlength=n_shards)
        open_shards = load < capacity
        if not open_shards.any():
            open_shards[:] = True
        masked = np.where(open_shards, scores, -np.inf)
        best = int(np.argmax(masked))
        if masked[best] <= 0.0:
            # No placed neighbours (or all full): balance instead.
            best = int(np.argmin(np.where(open_shards, load, np.inf)))
        assignment[col] = best
        load[best] += col_degree[col] + 1.0 / n_cols
    return assignment


def partition_graph(
    matrix: CSRMatrix,
    n_shards: int,
    *,
    strategy: str = "block",
    seed: int = 0,
) -> GraphPartition:
    """Partition ``matrix`` into ``n_shards`` local CSRs plus halo map.

    Args:
        matrix: Global graph adjacency.
        n_shards: Shard count (>= 1).
        strategy: ``"block"`` (contiguous, nnz-balanced; the default)
            or ``"edge-cut"`` (greedy affinity; see
            :func:`edge_cut_assignment`).
        seed: Tie-breaking seed for the edge-cut strategy.
    """
    if strategy == "block":
        assignment = contiguous_block_assignment(matrix, n_shards)
    elif strategy == "edge-cut":
        assignment = edge_cut_assignment(matrix, n_shards, seed=seed)
    else:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    return build_partition(matrix, assignment, n_shards, strategy=strategy)


def build_partition(
    matrix: CSRMatrix,
    assignment: np.ndarray,
    n_shards: int,
    *,
    strategy: str = "custom",
) -> GraphPartition:
    """Materialise per-shard local CSRs and the halo map for a given
    column -> shard assignment.

    Vectorised end to end (argsort/bincount/searchsorted); no Python
    loop touches individual nonzeros.  Raises ``ValueError`` when the
    assignment's shape or shard ids are invalid.
    """
    _check_shards(n_shards)
    assignment = np.ascontiguousarray(assignment, dtype=INDEX_DTYPE)
    if assignment.shape != (matrix.n_cols,):
        raise ValueError(
            f"assignment must have shape ({matrix.n_cols},), "
            f"got {assignment.shape}"
        )
    if matrix.n_cols and (
        assignment.min() < 0 or assignment.max() >= n_shards
    ):
        raise ValueError(
            f"assignment shard ids must lie in [0, {n_shards}), got "
            f"[{assignment.min()}, {assignment.max()}]"
        )
    row_of = np.repeat(
        np.arange(matrix.n_rows, dtype=INDEX_DTYPE), matrix.row_lengths
    )
    owner = (
        assignment[matrix.column_indices]
        if matrix.nnz
        else np.zeros(0, dtype=INDEX_DTYPE)
    )
    # Distinct (row, shard) pairs drive the halo map: a row contributed
    # by >= 2 shards is a boundary row whose partials the gather sums.
    if matrix.nnz:
        pair_keys = np.unique(row_of * n_shards + owner)
        row_shard_counts = np.bincount(
            (pair_keys // n_shards).astype(np.intp), minlength=matrix.n_rows
        )
    else:
        row_shard_counts = np.zeros(matrix.n_rows, dtype=np.intp)
    halo_rows = np.flatnonzero(row_shard_counts >= 2).astype(INDEX_DTYPE)

    nnz_order = np.argsort(owner, kind="stable")
    shard_nnz = np.bincount(owner, minlength=n_shards)
    shard_bounds = np.concatenate(([0], np.cumsum(shard_nnz)))
    col_map = np.full(matrix.n_cols, -1, dtype=INDEX_DTYPE)
    parts = []
    for shard in range(n_shards):
        index = nnz_order[shard_bounds[shard] : shard_bounds[shard + 1]]
        index.sort()  # restore row-major order within the shard
        sub_rows = row_of[index]
        sub_cols = matrix.column_indices[index]
        sub_vals = matrix.values[index]
        present = np.unique(sub_rows)
        local_rows = np.searchsorted(present, sub_rows)
        counts = np.bincount(local_rows, minlength=len(present))
        local_rp = np.concatenate(
            ([0], np.cumsum(counts))
        ).astype(INDEX_DTYPE)
        owned = np.flatnonzero(assignment == shard).astype(INDEX_DTYPE)
        col_map[owned] = np.arange(len(owned), dtype=INDEX_DTYPE)
        local_cols = col_map[sub_cols]
        local = CSRMatrix(
            n_rows=len(present),
            n_cols=len(owned),
            row_pointers=local_rp,
            column_indices=local_cols,
            values=sub_vals,
            version=matrix.version,
        )
        parts.append(
            ShardPart(
                shard_id=shard, matrix=local, rows=present, cols=owned
            )
        )
    stats = _stats(matrix, assignment, parts, row_shard_counts, strategy)
    obs.counter("shard.partition.built").inc()
    obs.histogram("shard.partition.balance").observe(stats.balance)
    obs.histogram("shard.partition.edge_cut").observe(stats.edge_cut)
    return GraphPartition(
        n_rows=matrix.n_rows,
        n_cols=matrix.n_cols,
        n_shards=n_shards,
        strategy=strategy,
        assignment=assignment,
        shards=tuple(parts),
        halo_rows=halo_rows,
        row_shard_counts=row_shard_counts,
        stats=stats,
    )


def _stats(
    matrix: CSRMatrix,
    assignment: np.ndarray,
    parts: "list[ShardPart]",
    row_shard_counts: np.ndarray,
    strategy: str,
) -> PartitionStats:
    nnz_per_shard = tuple(part.nnz for part in parts)
    rows_per_shard = tuple(len(part.rows) for part in parts)
    cols_per_shard = tuple(len(part.cols) for part in parts)
    mean_nnz = matrix.nnz / max(1, len(parts))
    balance = max(nnz_per_shard) / mean_nnz if matrix.nnz else 1.0
    distinct = int(np.count_nonzero(row_shard_counts))
    halo = int(np.count_nonzero(row_shard_counts >= 2))
    if matrix.nnz == 0:
        edge_cut = 0.0
    elif matrix.n_rows == matrix.n_cols:
        row_of = np.repeat(
            np.arange(matrix.n_rows, dtype=INDEX_DTYPE),
            matrix.row_lengths,
        )
        edge_cut = float(
            np.mean(
                assignment[row_of]
                != assignment[matrix.column_indices]
            )
        )
    else:
        row_of = np.repeat(
            np.arange(matrix.n_rows, dtype=INDEX_DTYPE),
            matrix.row_lengths,
        )
        edge_cut = float(np.mean(row_shard_counts[row_of] >= 2))
    return PartitionStats(
        n_shards=len(parts),
        strategy=strategy,
        nnz_per_shard=nnz_per_shard,
        rows_per_shard=rows_per_shard,
        cols_per_shard=cols_per_shard,
        balance=float(balance),
        edge_cut=edge_cut,
        halo_rows=halo,
        halo_fraction=halo / distinct if distinct else 0.0,
        distinct_rows=distinct,
        gather_rows=int(sum(rows_per_shard)),
    )


def _check_shards(n_shards: int) -> None:
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
