"""Seeded synthetic graph generators.

All generators are deterministic given a seed and return CSR adjacency
matrices.  Two generator families matter for the reproduction:

* **Power-law** (Table II Type I): a Zipf-shaped degree sequence scaled to
  hit a target non-zero count and maximum degree exactly, with neighbor
  choices drawn from a skewed popularity distribution so in-degrees are
  heavy-tailed too.  This reproduces the "evil row" structure the paper's
  load-balancing argument depends on.
* **Structured** (Table II Type II): near-uniform degree sequences with a
  small spread between average and maximum degree.

General-purpose generators (Barabási–Albert, R-MAT, Erdős–Rényi, ring
lattice) are included for tests, examples, and ablations.
"""

from __future__ import annotations

import numpy as np

from repro.formats import CSRMatrix


def _distribute_residual(
    degrees: np.ndarray, target_sum: int, max_degree: int, rng: np.random.Generator
) -> np.ndarray:
    """Adjust ``degrees`` in place so it sums to ``target_sum``.

    Increments are spread over rows below ``max_degree``; decrements over
    non-empty rows, never touching the (single) row pinned at
    ``max_degree`` so the maximum is preserved.
    """
    degrees = degrees.copy()
    residual = target_sum - int(degrees.sum())
    guard = 0
    while residual != 0:
        guard += 1
        if guard > 10_000:  # pragma: no cover - safety net
            raise RuntimeError("degree residual distribution failed to converge")
        if residual > 0:
            eligible = np.nonzero(degrees < max_degree)[0]
            if len(eligible) == 0:
                raise ValueError(
                    f"cannot reach nnz={target_sum} with max_degree={max_degree}"
                )
            chosen = eligible[: residual] if residual <= len(eligible) else eligible
            degrees[chosen] += 1
            residual -= len(chosen)
        else:
            # Keep exactly one row at max_degree: skip the first such row.
            at_max = np.nonzero(degrees == max_degree)[0]
            protected = at_max[0] if len(at_max) else -1
            eligible = np.nonzero(degrees > 0)[0]
            eligible = eligible[eligible != protected]
            if len(eligible) == 0:
                raise ValueError("cannot shrink degree sequence further")
            take = min(-residual, len(eligible))
            # Remove from the largest unprotected rows first to soften the tail
            # as little as possible while converging fast.
            order = np.argsort(degrees[eligible])[::-1][:take]
            degrees[eligible[order]] -= 1
            residual += take
    return degrees


def power_law_degree_sequence(
    n_nodes: int, nnz: int, max_degree: int, seed: int = 0
) -> np.ndarray:
    """A degree sequence with Zipf-shaped tail summing to exactly ``nnz``.

    The largest entry equals ``max_degree`` exactly.  The Zipf exponent is
    found by bisection so the unadjusted sequence lands near ``nnz``; a
    residual pass then fixes the total without disturbing the maximum.
    The returned sequence is shuffled so evil rows land at random indices,
    as in real graphs.
    """
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    if nnz < 0:
        raise ValueError("nnz must be non-negative")
    max_degree = min(max_degree, nnz)
    if max_degree <= 0:
        return np.zeros(n_nodes, dtype=np.int64)
    if nnz > n_nodes * max_degree:
        raise ValueError(
            f"nnz={nnz} unreachable with {n_nodes} rows of max degree {max_degree}"
        )
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_nodes + 1, dtype=np.float64)

    def total(exponent: float) -> int:
        return int(np.round(max_degree * ranks**-exponent).sum())

    low, high = 1e-3, 8.0
    if total(low) < nnz:
        # Even an almost-flat sequence is short of nnz: top up in the
        # residual pass below.
        exponent = low
    elif total(high) > nnz:
        exponent = high
    else:
        for _ in range(80):
            mid = 0.5 * (low + high)
            if total(mid) > nnz:
                low = mid
            else:
                high = mid
        exponent = 0.5 * (low + high)
    degrees = np.round(max_degree * ranks**-exponent).astype(np.int64)
    degrees[0] = max_degree
    np.clip(degrees, 0, max_degree, out=degrees)
    degrees = _distribute_residual(degrees, nnz, max_degree, rng)
    rng.shuffle(degrees)
    return degrees


def structured_degree_sequence(
    n_nodes: int, nnz: int, max_degree: int, seed: int = 0
) -> np.ndarray:
    """A near-uniform degree sequence (Table II Type II profile).

    Degrees are ``floor(nnz / n)`` or one more, with a single row raised to
    ``max_degree`` so the Table II maximum matches.
    """
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    max_degree = min(max_degree, nnz)
    base, extra = divmod(nnz, n_nodes)
    if base > max_degree or (base == max_degree and extra):
        raise ValueError(
            f"nnz={nnz} unreachable with {n_nodes} rows of max degree {max_degree}"
        )
    rng = np.random.default_rng(seed)
    degrees = np.full(n_nodes, base, dtype=np.int64)
    degrees[:extra] += 1
    if max_degree > degrees.max() and nnz >= max_degree:
        degrees[0] = max_degree
        degrees = _distribute_residual(degrees, nnz, max_degree, rng)
    rng.shuffle(degrees)
    return degrees


def graph_from_degree_sequence(
    degrees: np.ndarray,
    seed: int = 0,
    skewed_targets: bool = True,
) -> CSRMatrix:
    """Build a CSR adjacency matrix realizing an out-degree sequence.

    Neighbor (column) choices are sampled with replacement-free behaviour
    *not* enforced: duplicate edges are possible but rare and harmless for
    SpMM workloads (they simply add weight).  When ``skewed_targets`` is
    true, targets are drawn from a Zipf popularity distribution over a
    seeded permutation of the nodes so that in-degrees are heavy-tailed.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    n = len(degrees)
    nnz = int(degrees.sum())
    rng = np.random.default_rng(seed)
    if nnz == 0:
        return CSRMatrix.from_arrays(np.zeros(n + 1, dtype=np.int64), [], [])
    if skewed_targets:
        weights = 1.0 / np.arange(1, n + 1, dtype=np.float64)
        rng.shuffle(weights)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        columns = np.searchsorted(cdf, rng.random(nnz), side="left").astype(np.int64)
        np.clip(columns, 0, n - 1, out=columns)
    else:
        columns = rng.integers(0, n, size=nnz, dtype=np.int64)
    row_pointers = np.concatenate(([0], np.cumsum(degrees)))
    return CSRMatrix.from_arrays(row_pointers, columns)


def power_law_graph(
    n_nodes: int, nnz: int, max_degree: int, seed: int = 0
) -> CSRMatrix:
    """A power-law graph matching ``(n_nodes, nnz, max_degree)`` exactly."""
    degrees = power_law_degree_sequence(n_nodes, nnz, max_degree, seed)
    return graph_from_degree_sequence(degrees, seed=seed + 1, skewed_targets=True)


def regular_graph(
    n_nodes: int, nnz: int, max_degree: int, seed: int = 0
) -> CSRMatrix:
    """A structured (near-regular) graph matching the target statistics."""
    degrees = structured_degree_sequence(n_nodes, nnz, max_degree, seed)
    return graph_from_degree_sequence(degrees, seed=seed + 1, skewed_targets=False)


def erdos_renyi_graph(n_nodes: int, p: float, seed: int = 0) -> CSRMatrix:
    """Erdős–Rényi ``G(n, p)`` directed graph (binomial row lengths)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    degrees = rng.binomial(n_nodes, p, size=n_nodes).astype(np.int64)
    return graph_from_degree_sequence(degrees, seed=seed + 1, skewed_targets=False)


def barabasi_albert_graph(n_nodes: int, m_edges: int, seed: int = 0) -> CSRMatrix:
    """Barabási–Albert preferential attachment (undirected, symmetrized).

    Each new node attaches to ``m_edges`` existing nodes chosen by the
    repeated-nodes trick (uniform sampling from the running endpoint list),
    which realizes linear preferential attachment.
    """
    if m_edges < 1 or m_edges >= n_nodes:
        raise ValueError("need 1 <= m_edges < n_nodes")
    rng = np.random.default_rng(seed)
    endpoints: list[int] = list(range(m_edges))
    sources: list[int] = []
    targets: list[int] = []
    for node in range(m_edges, n_nodes):
        picks = set()
        while len(picks) < m_edges:
            picks.add(endpoints[rng.integers(0, len(endpoints))])
        for target in picks:
            sources.append(node)
            targets.append(target)
            endpoints.append(node)
            endpoints.append(target)
    rows = np.array(sources + targets, dtype=np.int64)
    cols = np.array(targets + sources, dtype=np.int64)
    from repro.formats import COOMatrix

    return COOMatrix(
        n_rows=n_nodes,
        n_cols=n_nodes,
        rows=rows,
        cols=cols,
        values=np.ones(len(rows)),
    ).deduplicate().to_csr()


def stochastic_block_model(
    sizes: "list[int]",
    p_in: float,
    p_out: float,
    seed: int = 0,
) -> CSRMatrix:
    """Stochastic block model: dense-within, sparse-between communities.

    The classic planted-community benchmark used by the node-
    classification example: a GCN aggregating over such a graph separates
    the blocks easily, so training accuracy is a meaningful signal.

    Args:
        sizes: Community sizes (their sum is the node count).
        p_in: Edge probability inside a community.
        p_out: Edge probability between communities.
        seed: RNG seed.
    """
    if not sizes or any(s < 1 for s in sizes):
        raise ValueError("sizes must be non-empty positive integers")
    if not (0.0 <= p_out <= p_in <= 1.0):
        raise ValueError("need 0 <= p_out <= p_in <= 1")
    rng = np.random.default_rng(seed)
    boundaries = np.concatenate(([0], np.cumsum(sizes)))
    n = int(boundaries[-1])
    blocks = []
    for i in range(len(sizes)):
        row_blocks = []
        for j in range(len(sizes)):
            p = p_in if i == j else p_out
            row_blocks.append(rng.random((sizes[i], sizes[j])) < p)
        blocks.append(np.concatenate(row_blocks, axis=1))
    dense = np.concatenate(blocks, axis=0)
    np.fill_diagonal(dense, False)
    return CSRMatrix.from_dense(dense.astype(np.float64))


def block_labels(sizes: "list[int]") -> np.ndarray:
    """Ground-truth community label per node for an SBM graph."""
    return np.repeat(np.arange(len(sizes)), sizes)


def rmat_graph(
    scale: int,
    nnz: int,
    seed: int = 0,
    probabilities: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
) -> CSRMatrix:
    """R-MAT recursive-matrix graph with ``2**scale`` nodes.

    The Graph500-style quadrant probabilities default to the standard
    ``(0.57, 0.19, 0.19, 0.05)`` which yields strong power-law behaviour.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    a, b, c, d = probabilities
    if not np.isclose(a + b + c + d, 1.0):
        raise ValueError("quadrant probabilities must sum to 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    rows = np.zeros(nnz, dtype=np.int64)
    cols = np.zeros(nnz, dtype=np.int64)
    thresholds = np.cumsum([a, b, c])
    for _ in range(scale):
        draw = rng.random(nnz)
        quadrant = np.searchsorted(thresholds, draw, side="right")
        rows = rows * 2 + (quadrant >= 2)
        cols = cols * 2 + (quadrant % 2)
    from repro.formats import COOMatrix

    return COOMatrix(
        n_rows=n, n_cols=n, rows=rows, cols=cols, values=np.ones(nnz)
    ).to_csr()
