"""Graph container tying an adjacency matrix to node features.

A :class:`Graph` is what the GNN layers in :mod:`repro.gnn` and the
experiment harness consume: a square CSR adjacency matrix, an optional
feature matrix, and a human-readable name used in reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats import CSRMatrix, RowStatistics, row_statistics


@dataclass(frozen=True)
class Graph:
    """A named graph with CSR adjacency and optional node features.

    Attributes:
        name: Dataset name used in experiment reports.
        adjacency: Square ``n x n`` CSR adjacency matrix (the paper's *A*).
        features: Optional ``n x f`` dense node-feature matrix (the paper's
            *X*); generated on demand by :meth:`random_features` when the
            dataset registry does not supply one.
    """

    name: str
    adjacency: CSRMatrix
    features: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.adjacency.n_rows != self.adjacency.n_cols:
            raise ValueError(
                f"adjacency must be square, got {self.adjacency.shape}"
            )
        if self.features is not None and len(self.features) != self.n_nodes:
            raise ValueError(
                f"features must have one row per node: expected {self.n_nodes},"
                f" got {len(self.features)}"
            )

    @property
    def n_nodes(self) -> int:
        return self.adjacency.n_rows

    @property
    def n_edges(self) -> int:
        """Number of stored non-zeros (directed edge count)."""
        return self.adjacency.nnz

    @property
    def statistics(self) -> RowStatistics:
        """Degree statistics (Table II columns)."""
        return row_statistics(self.adjacency)

    def random_features(self, dim: int, seed: int = 0) -> np.ndarray:
        """A seeded dense ``n x dim`` feature matrix in [0, 1)."""
        rng = np.random.default_rng(seed)
        return rng.random((self.n_nodes, dim))

    def with_features(self, features: np.ndarray) -> "Graph":
        """A copy of this graph carrying the given feature matrix."""
        return Graph(name=self.name, adjacency=self.adjacency, features=features)

    def normalized_adjacency(self, add_self_loops: bool = True) -> CSRMatrix:
        """GCN-normalized adjacency ``D^-1/2 (A + I) D^-1/2``.

        This is the matrix Kipf & Welling's GCN multiplies against ``XW``;
        the sparsity structure (and hence every scheduling decision) matches
        ``A`` plus the diagonal.
        """
        adj = self.adjacency
        if add_self_loops:
            coo = adj.to_coo()
            diag = np.arange(self.n_nodes, dtype=np.int64)
            rows = np.concatenate([coo.rows, diag])
            cols = np.concatenate([coo.cols, diag])
            vals = np.concatenate([coo.values, np.ones(self.n_nodes)])
            from repro.formats import COOMatrix

            adj = COOMatrix(
                n_rows=self.n_nodes,
                n_cols=self.n_nodes,
                rows=rows,
                cols=cols,
                values=vals,
            ).deduplicate().to_csr()
        degrees = adj.row_lengths.astype(np.float64)
        inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(np.maximum(degrees, 1)), 0.0)
        rows = np.repeat(np.arange(adj.n_rows), adj.row_lengths)
        values = adj.values * inv_sqrt[rows] * inv_sqrt[adj.column_indices]
        return CSRMatrix(
            n_rows=adj.n_rows,
            n_cols=adj.n_cols,
            row_pointers=adj.row_pointers,
            column_indices=adj.column_indices,
            values=values,
        )
