"""Delta-CSR overlay: versioned live-graph mutation over a frozen base.

The ROADMAP's "Dynamic graphs" item needs edges and nodes to change
*under traffic*, but every tier built so far — merge-path schedules,
:class:`~repro.serve.plancache.PlanCache`, the engine plan cache, the
autotuner — keys its work on an immutable CSR structure.  The paper's
schedule is a pure function of that structure, which makes
stale-structure execution a silent-wrong-answer bug class, not a crash.

:class:`DeltaCSR` resolves the tension the way LSM trees and RCU do:

* the **base** :class:`~repro.formats.CSRMatrix` stays frozen;
* edge inserts / deletes / value updates accumulate in a small
  **overlay log**, bumping a monotonic :attr:`version` once per applied
  batch (one batch == one graph epoch);
* :meth:`snapshot` materializes an **immutable, epoch-stamped** CSR
  (``matrix.version`` is the epoch, so its fingerprint — and therefore
  every cache key in the stack — is version-precise), touching only the
  *dirty* rows and bulk-copying clean runs;
* once the log exceeds ``compact_threshold`` the snapshot **compacts**:
  the materialized matrix becomes the new base and the log resets.

Snapshots carry their base's fingerprint and the sorted dirty-row set,
which is what lets :class:`repro.serve.plancache.PlanCache` *repair* a
cached base plan in ``O(|delta| * dim)`` instead of recompiling the full
merge path, and lets :class:`repro.serve.epoch.GraphEpochManager`
invalidate exactly the retired epoch's cache keys.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro import obs
from repro.formats import CSRMatrix
from repro.formats.csr import INDEX_DTYPE, VALUE_DTYPE

INSERT = "insert"
DELETE = "delete"
UPDATE = "update"
_OPS = (INSERT, DELETE, UPDATE)


@dataclass(frozen=True)
class EdgeUpdate:
    """One edge mutation: insert, delete, or value update.

    Attributes:
        op: ``"insert"`` (edge must not exist), ``"delete"`` or
            ``"update"`` (edge must exist).  Strict existence semantics
            turn client bugs (double-insert, delete-of-missing) into
            errors at apply time instead of silent divergence between
            replicas.
        row: Source row (0-based).
        col: Target column (0-based).
        value: Edge weight for ``insert``/``update`` (ignored by
            ``delete``).
    """

    op: str
    row: int
    col: int
    value: float = 1.0

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"op must be one of {_OPS}, got {self.op!r}")
        if self.row < 0 or self.col < 0:
            raise ValueError(
                f"row/col must be non-negative, got ({self.row}, {self.col})"
            )
        if self.op != DELETE and not np.isfinite(self.value):
            raise ValueError(f"value must be finite, got {self.value}")

    @classmethod
    def insert(cls, row: int, col: int, value: float = 1.0) -> "EdgeUpdate":
        return cls(INSERT, row, col, value)

    @classmethod
    def delete(cls, row: int, col: int) -> "EdgeUpdate":
        return cls(DELETE, row, col)

    @classmethod
    def update(cls, row: int, col: int, value: float) -> "EdgeUpdate":
        return cls(UPDATE, row, col, value)


@dataclass(frozen=True)
class GraphSnapshot:
    """An immutable, epoch-stamped view of a :class:`DeltaCSR`.

    Attributes:
        matrix: Materialized CSR with ``version == epoch``; safe to
            schedule, cache, and execute against indefinitely.
        base: The overlay's base matrix at snapshot time (what a cached
            *base plan* was compiled for).
        epoch: The delta's monotonic version this snapshot captures.
        dirty_rows: Sorted rows that differ from ``base`` (empty when
            the snapshot *is* the base).
        log_size: Overlay log length remaining after this snapshot
            (0 right after a compaction).
        compacted: Whether taking this snapshot compacted the log
            (``matrix`` became the new base).
    """

    matrix: CSRMatrix
    base: CSRMatrix = field(repr=False)
    epoch: int = 0
    dirty_rows: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=INDEX_DTYPE), repr=False
    )
    log_size: int = 0
    compacted: bool = False

    @property
    def fingerprint(self) -> str:
        """Version-precise structural fingerprint of the snapshot."""
        return self.matrix.fingerprint()

    @property
    def base_fingerprint(self) -> str:
        """Structural fingerprint of the repair base."""
        return self.base.fingerprint()

    @property
    def dirty_fraction(self) -> float:
        """Dirty rows over total rows (repair-feasibility signal)."""
        rows = self.matrix.n_rows
        return len(self.dirty_rows) / rows if rows else 0.0


class UpdatePlanner:
    """Generates valid random edge-update batches for a live graph.

    Single-writer by design: it tracks edge occupancy locally (seeded
    from the base CSR's structure, multi-edges coalesced), so every
    generated batch satisfies :class:`DeltaCSR`'s strict existence
    semantics without peeking at the delta's internals.  Shared by the
    load generator's ``--update-rate`` stream and the ``chaos-update``
    injection suite.

    Args:
        base: The starting adjacency matrix (occupancy seed).
        delete_fraction: Probability an existing edge is deleted rather
            than value-updated when the planner lands on it.
    """

    def __init__(self, base: CSRMatrix, *, delete_fraction: float = 0.3) -> None:
        if not 0.0 <= delete_fraction <= 1.0:
            raise ValueError(
                f"delete_fraction must be in [0, 1], got {delete_fraction}"
            )
        self.n_rows = base.n_rows
        self.n_cols = base.n_cols
        self.delete_fraction = delete_fraction
        self.occupied: "set[tuple[int, int]]" = set()
        for row in range(base.n_rows):
            cols, _ = base.row_slice(row)
            for col in cols.tolist():
                self.occupied.add((row, int(col)))

    def batch(self, rng: np.random.Generator, size: int) -> "list[EdgeUpdate]":
        """One valid batch of ``size`` updates, mutating the local occupancy."""
        updates: "list[EdgeUpdate]" = []
        for _ in range(size):
            row = int(rng.integers(0, self.n_rows))
            col = int(rng.integers(0, self.n_cols))
            if (row, col) not in self.occupied:
                updates.append(
                    EdgeUpdate.insert(row, col, float(rng.random()) + 0.5)
                )
                self.occupied.add((row, col))
            elif rng.random() < self.delete_fraction:
                updates.append(EdgeUpdate.delete(row, col))
                self.occupied.discard((row, col))
            else:
                updates.append(
                    EdgeUpdate.update(row, col, float(rng.random()) + 0.5)
                )
        return updates


class DeltaCSR:
    """A mutable graph: frozen CSR base + versioned edge-update overlay.

    Thread-safe: :meth:`apply` and :meth:`snapshot` may race freely;
    each applied batch bumps :attr:`version` exactly once, and a
    snapshot always reflects a whole number of batches.

    Args:
        base: The starting adjacency matrix.  Stamped with
            ``version=0`` if it carries no version.
        compact_threshold: Log size at which :meth:`snapshot` folds the
            overlay into a new base.  Small thresholds trade snapshot
            cost for repairability (cached base plans survive longer
            between rebases).
    """

    def __init__(self, base: CSRMatrix, *, compact_threshold: int = 1024) -> None:
        if compact_threshold < 1:
            raise ValueError(
                f"compact_threshold must be >= 1, got {compact_threshold}"
            )
        self._lock = threading.RLock()
        self._base = base if base.version is not None else base.with_version(0)
        self._version = int(self._base.version)  # type: ignore[arg-type]
        self.compact_threshold = compact_threshold
        # row -> {col: value | None}; None marks a deletion.
        self._overlay: "dict[int, dict[int, float | None]]" = {}
        self._log_size = 0
        self.compactions = 0
        self.total_updates = 0
        self._snapshot_cache: "GraphSnapshot | None" = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic epoch counter; bumps once per applied batch."""
        with self._lock:
            return self._version

    @property
    def base(self) -> CSRMatrix:
        with self._lock:
            return self._base

    @property
    def log_size(self) -> int:
        """Updates accumulated since the last compaction."""
        with self._lock:
            return self._log_size

    @property
    def n_rows(self) -> int:
        return self._base.n_rows

    @property
    def n_cols(self) -> int:
        return self._base.n_cols

    def compaction_backlog(self) -> float:
        """Log size over threshold (>= 1.0 means the next snapshot compacts)."""
        with self._lock:
            return self._log_size / self.compact_threshold

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply(self, updates: "Iterable[EdgeUpdate]") -> int:
        """Apply one batch of edge updates atomically; returns the new epoch.

        The whole batch validates against the *merged* state (base +
        overlay + earlier updates in the same batch) before any of it
        lands, so a bad update never leaves a half-applied epoch.
        """
        batch = list(updates)
        for update in batch:
            if not isinstance(update, EdgeUpdate):
                raise TypeError(f"expected EdgeUpdate, got {type(update).__name__}")
        with self._lock:
            if not batch:
                return self._version
            # Validate against a scratch copy first: all-or-nothing.
            scratch: "dict[int, dict[int, float | None]]" = {}
            for update in batch:
                self._check_bounds(update)
                exists = self._edge_exists(update.row, update.col, scratch)
                if update.op == INSERT and exists:
                    raise ValueError(
                        f"insert of existing edge ({update.row}, {update.col})"
                    )
                if update.op in (DELETE, UPDATE) and not exists:
                    raise ValueError(
                        f"{update.op} of missing edge ({update.row}, {update.col})"
                    )
                scratch.setdefault(update.row, {})[update.col] = (
                    None if update.op == DELETE else float(update.value)
                )
            for row, edits in scratch.items():
                self._overlay.setdefault(row, {}).update(edits)
            self._log_size += len(batch)
            self.total_updates += len(batch)
            self._version += 1
            self._snapshot_cache = None
            obs.counter("graphs.delta.updates").inc(len(batch))
            obs.counter("graphs.delta.batches").inc()
            if obs.enabled():
                obs.gauge("graphs.delta.log_size").set(float(self._log_size))
                obs.gauge("graphs.delta.version").set(float(self._version))
            return self._version

    def insert_edge(self, row: int, col: int, value: float = 1.0) -> int:
        return self.apply([EdgeUpdate.insert(row, col, value)])

    def delete_edge(self, row: int, col: int) -> int:
        return self.apply([EdgeUpdate.delete(row, col)])

    def update_edge(self, row: int, col: int, value: float) -> int:
        return self.apply([EdgeUpdate.update(row, col, value)])

    def _check_bounds(self, update: EdgeUpdate) -> None:
        if update.row >= self._base.n_rows or update.col >= self._base.n_cols:
            raise ValueError(
                f"edge ({update.row}, {update.col}) out of bounds for "
                f"shape {self._base.shape}"
            )

    def _edge_exists(
        self,
        row: int,
        col: int,
        scratch: "dict[int, dict[int, float | None]] | None" = None,
    ) -> bool:
        if scratch is not None:
            pending = scratch.get(row)
            if pending is not None and col in pending:
                return pending[col] is not None
        edits = self._overlay.get(row)
        if edits is not None and col in edits:
            return edits[col] is not None
        cols, _ = self._base.row_slice(row)
        # Base rows need not be sorted; membership is a linear scan over
        # one row's non-zeros (degree-bounded, not nnz-bounded).
        return bool(np.any(cols == col))

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> GraphSnapshot:
        """An immutable, epoch-stamped materialized CSR of current state.

        Repeated calls at the same version return the same (cached)
        snapshot object.  When the log has reached
        ``compact_threshold``, materialization doubles as compaction:
        the snapshot's matrix becomes the new base and the log resets.
        """
        with self._lock:
            cached = self._snapshot_cache
            if cached is not None and cached.epoch == self._version:
                return cached
            compacted = False
            if self._overlay and self._log_size >= self.compact_threshold:
                with obs.span(
                    "graphs.delta.compact",
                    log_size=self._log_size,
                    dirty_rows=len(self._overlay),
                ):
                    self._base = self._materialize_locked()
                self._overlay.clear()
                self._log_size = 0
                self.compactions += 1
                compacted = True
                obs.counter("graphs.delta.compactions").inc()
                if obs.enabled():
                    obs.gauge("graphs.delta.log_size").set(0.0)
            if not self._overlay:
                matrix = self._base
                if matrix.version != self._version:
                    # No pending edits but the epoch advanced (e.g. a
                    # compaction landed on an older version): restamp so
                    # the fingerprint stays version-precise.
                    matrix = matrix.with_version(self._version)
                    self._base = matrix
                dirty = np.empty(0, dtype=INDEX_DTYPE)
            else:
                with obs.span(
                    "graphs.delta.materialize",
                    dirty_rows=len(self._overlay),
                    log_size=self._log_size,
                ):
                    matrix = self._materialize_locked()
                dirty = np.fromiter(
                    sorted(self._overlay), dtype=INDEX_DTYPE,
                    count=len(self._overlay),
                )
            snapshot = GraphSnapshot(
                matrix=matrix,
                base=self._base,
                epoch=self._version,
                dirty_rows=dirty,
                log_size=self._log_size,
                compacted=compacted,
            )
            self._snapshot_cache = snapshot
            obs.counter("graphs.delta.snapshots").inc()
            return snapshot

    def _materialize_locked(self) -> CSRMatrix:
        """Merge the overlay into a fresh CSR stamped with the current epoch.

        Only dirty rows are merged element-wise; runs of clean rows are
        bulk slice copies from the base, so the cost is
        ``O(nnz_copy + sum(degree(dirty)))`` with tiny constants.
        """
        base = self._base
        lengths = np.diff(base.row_pointers)
        lengths = np.ascontiguousarray(lengths, dtype=INDEX_DTYPE)
        dirty = sorted(self._overlay)
        merged_rows: "dict[int, tuple[np.ndarray, np.ndarray]]" = {}
        for row in dirty:
            cols, vals = base.row_slice(row)
            # Generated graphs may hold multi-edges (the same column
            # repeated within a row).  SpMM sums parallel edges, so
            # coalescing a *dirty* row by summation preserves the dense
            # operator exactly; an ``update`` then sets the coalesced
            # weight and a ``delete`` removes every parallel copy.
            entries: "dict[int, float]" = {}
            for col, value in zip(cols.tolist(), vals.tolist()):
                entries[col] = entries.get(col, 0.0) + value
            for col, value in self._overlay[row].items():
                if value is None:
                    entries.pop(col, None)
                else:
                    entries[col] = value
            ordered = sorted(entries)
            merged_rows[row] = (
                np.asarray(ordered, dtype=INDEX_DTYPE),
                np.asarray([entries[c] for c in ordered], dtype=VALUE_DTYPE),
            )
            lengths[row] = len(ordered)
        row_pointers = np.concatenate(
            ([0], np.cumsum(lengths, dtype=INDEX_DTYPE))
        )
        nnz = int(row_pointers[-1])
        column_indices = np.empty(nnz, dtype=INDEX_DTYPE)
        values = np.empty(nnz, dtype=VALUE_DTYPE)
        previous = 0
        for row in [*dirty, base.n_rows]:
            if previous < row:  # clean run [previous, row)
                src_lo = int(base.row_pointers[previous])
                src_hi = int(base.row_pointers[row])
                dst_lo = int(row_pointers[previous])
                dst_hi = dst_lo + (src_hi - src_lo)
                column_indices[dst_lo:dst_hi] = base.column_indices[src_lo:src_hi]
                values[dst_lo:dst_hi] = base.values[src_lo:src_hi]
            if row < base.n_rows:
                cols, vals = merged_rows[row]
                dst_lo = int(row_pointers[row])
                column_indices[dst_lo : dst_lo + len(cols)] = cols
                values[dst_lo : dst_lo + len(cols)] = vals
            previous = row + 1
        return CSRMatrix(
            n_rows=base.n_rows,
            n_cols=base.n_cols,
            row_pointers=row_pointers,
            column_indices=column_indices,
            values=values,
            version=self._version,
        )
