"""Synthetic stand-ins for the paper's Table II datasets.

The evaluation uses 23 real graphs.  With no network or dataset archive
available, each dataset is regenerated as a *seeded synthetic graph matched
to its published statistics*: node count, non-zero count, and maximum degree
are matched exactly (average degree follows from nodes and non-zeros);
Type I datasets get a Zipf-shaped (power-law) degree profile and Type II a
near-regular profile, mirroring the paper's categorization.  DESIGN.md
records this substitution.

Datasets are cached per ``(name, seed, scale)`` because several experiment
harnesses reuse the same graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.graphs.generators import power_law_graph, regular_graph
from repro.graphs.graph import Graph

POWER_LAW = "power_law"
STRUCTURED = "structured"


@dataclass(frozen=True)
class DatasetSpec:
    """Published Table II statistics for one dataset.

    Attributes:
        name: Dataset name as printed in Table II.
        kind: ``"power_law"`` (Type I) or ``"structured"`` (Type II).
        n_nodes: Published node count.
        nnz: Published non-zero count.
        avg_degree: Published average degree (for reporting only; it is
            implied by ``nnz / n_nodes``).
        max_degree: Published maximum degree, matched exactly by the
            generator.
    """

    name: str
    kind: str
    n_nodes: int
    nnz: int
    avg_degree: float
    max_degree: int

    @property
    def is_power_law(self) -> bool:
        return self.kind == POWER_LAW


_TABLE_II: tuple[DatasetSpec, ...] = (
    # --- Type I: power-law graphs, in the paper's nnz order -------------
    DatasetSpec("Cora", POWER_LAW, 2_708, 10_556, 3.9, 168),
    DatasetSpec("Citeseer", POWER_LAW, 3_327, 9_228, 2.8, 99),
    DatasetSpec("Pubmed", POWER_LAW, 19_717, 99_203, 5.1, 171),
    DatasetSpec("Oregon-1", POWER_LAW, 11_492, 46_818, 4.1, 2_389),
    DatasetSpec("As-caida", POWER_LAW, 31_379, 106_762, 3.4, 2_628),
    DatasetSpec("Wiki-Vote", POWER_LAW, 8_297, 103_689, 12.5, 893),
    DatasetSpec("email-Enron", POWER_LAW, 36_692, 367_662, 10.0, 1_383),
    DatasetSpec("email-Euall", POWER_LAW, 265_214, 420_045, 1.6, 930),
    DatasetSpec("Nell", POWER_LAW, 65_755, 251_550, 3.8, 4_549),
    DatasetSpec("PPI", POWER_LAW, 56_944, 818_716, 14.4, 429),
    DatasetSpec("soc-SlashDot811", POWER_LAW, 77_357, 905_468, 11.7, 2_508),
    DatasetSpec("artist", POWER_LAW, 50_515, 1_638_396, 32.4, 1_469),
    DatasetSpec("com-Amazon", POWER_LAW, 334_863, 1_851_744, 5.5, 549),
    DatasetSpec("coAuthorsDBLP", POWER_LAW, 299_067, 1_955_352, 6.5, 336),
    DatasetSpec("soc-BlogCatalog", POWER_LAW, 88_784, 2_093_195, 23.6, 2_538),
    DatasetSpec("amazon0601", POWER_LAW, 410_236, 4_878_874, 11.9, 2_760),
    DatasetSpec("amazon0505", POWER_LAW, 403_394, 5_478_357, 13.6, 2_760),
    # --- Type II: structured graphs --------------------------------------
    DatasetSpec("PROTEINS_full", STRUCTURED, 43_466, 162_088, 3.7, 25),
    DatasetSpec("Twitter-partial", STRUCTURED, 580_768, 1_435_116, 2.5, 12),
    DatasetSpec("DD", STRUCTURED, 334_925, 1_686_092, 5.0, 19),
    DatasetSpec("Yeast", STRUCTURED, 1_710_902, 3_636_546, 2.1, 6),
    DatasetSpec("OVCAR-8H", STRUCTURED, 1_889_542, 3_946_402, 2.1, 5),
    DatasetSpec("SW-620H", STRUCTURED, 1_888_584, 3_944_206, 2.1, 5),
)

DATASETS: dict[str, DatasetSpec] = {spec.name: spec for spec in _TABLE_II}


def power_law_dataset_names() -> list[str]:
    """Type I dataset names in the paper's Table II order."""
    return [spec.name for spec in _TABLE_II if spec.kind == POWER_LAW]


def structured_dataset_names() -> list[str]:
    """Type II dataset names in the paper's Table II order."""
    return [spec.name for spec in _TABLE_II if spec.kind == STRUCTURED]


def scaled_spec(spec: DatasetSpec, scale: float) -> DatasetSpec:
    """Downscale a dataset spec by ``scale`` in (0, 1].

    Nodes and non-zeros shrink proportionally (preserving the average
    degree); the maximum degree is preserved where possible so the
    evil-row imbalance ratio — the statistic that drives every result in
    the paper — is retained, and clamped to the new graph size otherwise.
    Used by the multicore experiments (DESIGN.md §5).
    """
    if not 0 < scale <= 1:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    if scale == 1.0:
        return spec
    n_nodes = max(16, int(round(spec.n_nodes * scale)))
    nnz = max(n_nodes, int(round(spec.nnz * scale)))
    max_degree = min(spec.max_degree, nnz, n_nodes)
    return DatasetSpec(
        name=spec.name,
        kind=spec.kind,
        n_nodes=n_nodes,
        nnz=nnz,
        avg_degree=nnz / n_nodes,
        max_degree=max_degree,
    )


@lru_cache(maxsize=64)
def load_dataset(name: str, seed: int = 2023, scale: float = 1.0) -> Graph:
    """Generate (or fetch from cache) the synthetic stand-in for a dataset.

    Args:
        name: Table II dataset name (see :data:`DATASETS`).
        seed: RNG seed; different seeds give structurally similar graphs.
        scale: Optional downscale factor in (0, 1] (see :func:`scaled_spec`).

    Returns:
        A :class:`~repro.graphs.graph.Graph` whose adjacency matches the
        published node/nnz/max-degree statistics.
    """
    if name not in DATASETS:
        known = ", ".join(sorted(DATASETS))
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}")
    spec = scaled_spec(DATASETS[name], scale)
    generator = power_law_graph if spec.is_power_law else regular_graph
    adjacency = generator(spec.n_nodes, spec.nnz, spec.max_degree, seed=seed)
    return Graph(name=spec.name, adjacency=adjacency)
