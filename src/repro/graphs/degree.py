"""Degree-distribution analysis: the data behind the paper's Figure 1.

Figure 1 shows log-log degree distributions for graphs from diverse
domains, arguing that power-law tails create the load-imbalance problem.
:func:`fit_power_law` fits the tail exponent by linear regression in
log-log space, which is sufficient to separate Type I from Type II inputs
(heavier tails fit with small exponents and high dynamic range).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats import CSRMatrix
from repro.formats.stats import degree_histogram


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares power-law fit ``count ~ C * degree^-alpha``.

    Attributes:
        alpha: Fitted tail exponent (positive for decaying tails).
        intercept: Fitted ``log10(C)``.
        r_squared: Coefficient of determination of the log-log fit.
        degree_range: ``(min_degree, max_degree)`` over the fitted support.
    """

    alpha: float
    intercept: float
    r_squared: float
    degree_range: tuple[int, int]

    @property
    def dynamic_range(self) -> float:
        """``max_degree / min_degree`` over the fitted support."""
        lo, hi = self.degree_range
        return hi / lo if lo else float("inf")


def fit_power_law(matrix: CSRMatrix, min_degree: int = 1) -> PowerLawFit:
    """Fit a power law to the out-degree distribution of ``matrix``.

    Args:
        matrix: CSR adjacency matrix.
        min_degree: Smallest degree included in the fit (zeros are always
            excluded since ``log 0`` is undefined).

    Returns:
        The fitted :class:`PowerLawFit`.

    Raises:
        ValueError: If fewer than two distinct degrees are present, making
            a regression impossible.
    """
    degrees, counts = degree_histogram(matrix)
    mask = degrees >= max(min_degree, 1)
    degrees, counts = degrees[mask], counts[mask]
    if len(degrees) < 2:
        raise ValueError("need at least two distinct degrees to fit a power law")
    log_d = np.log10(degrees.astype(np.float64))
    log_c = np.log10(counts.astype(np.float64))
    slope, intercept = np.polyfit(log_d, log_c, deg=1)
    predicted = slope * log_d + intercept
    ss_res = float(((log_c - predicted) ** 2).sum())
    ss_tot = float(((log_c - log_c.mean()) ** 2).sum())
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PowerLawFit(
        alpha=float(-slope),
        intercept=float(intercept),
        r_squared=r_squared,
        degree_range=(int(degrees.min()), int(degrees.max())),
    )


def looks_power_law(
    matrix: CSRMatrix,
    min_dynamic_range: float = 30.0,
    min_alpha: float = 0.5,
) -> bool:
    """Heuristic Type I / Type II classifier used in reports.

    A graph "looks power law" when its degree distribution spans a wide
    dynamic range and decays with a meaningful exponent.  The thresholds
    cleanly separate the paper's Type I and Type II datasets.
    """
    try:
        fit = fit_power_law(matrix)
    except ValueError:
        return False
    return fit.dynamic_range >= min_dynamic_range and fit.alpha >= min_alpha
