"""Graph substrate: containers, synthetic generators, and dataset registry.

The paper evaluates on 23 real graphs (Table II).  This environment has no
network access, so :mod:`repro.graphs.datasets` regenerates each dataset as
a *seeded synthetic stand-in* matched to the published statistics (node
count, non-zero count, average degree, maximum degree, and a power-law vs.
structured degree profile).  The generators themselves live in
:mod:`repro.graphs.generators` and are reusable for arbitrary experiments.

Live graphs: :mod:`repro.graphs.delta` layers a versioned edge-update
overlay (:class:`DeltaCSR`) over a frozen CSR base, materializing
immutable epoch-stamped snapshots for the serving stack's epoch manager
(:mod:`repro.serve.epoch`).
"""

from repro.graphs.delta import (
    DeltaCSR,
    EdgeUpdate,
    GraphSnapshot,
    UpdatePlanner,
)
from repro.graphs.graph import Graph
from repro.graphs.generators import (
    barabasi_albert_graph,
    block_labels,
    erdos_renyi_graph,
    power_law_degree_sequence,
    power_law_graph,
    regular_graph,
    rmat_graph,
    stochastic_block_model,
    structured_degree_sequence,
)
from repro.graphs.datasets import (
    DATASETS,
    DatasetSpec,
    load_dataset,
    power_law_dataset_names,
    structured_dataset_names,
)
from repro.graphs.degree import PowerLawFit, fit_power_law
from repro.graphs.reorder import (
    bfs_order,
    degree_sort_order,
    permute_rows_and_columns,
    random_order,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "DeltaCSR",
    "EdgeUpdate",
    "Graph",
    "GraphSnapshot",
    "PowerLawFit",
    "UpdatePlanner",
    "barabasi_albert_graph",
    "bfs_order",
    "block_labels",
    "degree_sort_order",
    "erdos_renyi_graph",
    "fit_power_law",
    "load_dataset",
    "power_law_dataset_names",
    "permute_rows_and_columns",
    "power_law_degree_sequence",
    "power_law_graph",
    "random_order",
    "regular_graph",
    "rmat_graph",
    "stochastic_block_model",
    "structured_dataset_names",
    "structured_degree_sequence",
]
