"""Graph reordering strategies.

The paper stresses that MergePath-SpMM "requires no preprocessing,
reordering, or extension of the sparse input matrix" — unlike several
accelerator frameworks that reorder rows to tame load imbalance.  This
module implements the common reorderings so that claim can be *tested*:
the merge-path schedule's load-balance statistics are invariant under
permutation, while row-splitting's imbalance changes dramatically.

Implemented orderings:

* :func:`degree_sort_order` — rows by descending degree (clusters evil
  rows; what AWB-GCN-like designs benefit from);
* :func:`bfs_order` — breadth-first (Cuthill-McKee-style locality);
* :func:`random_order` — seeded shuffle (destroys locality; a control).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.formats import CSRMatrix


def permute_rows_and_columns(matrix: CSRMatrix, order: np.ndarray) -> CSRMatrix:
    """Symmetric permutation: row/column ``order[i]`` becomes ``i``.

    Args:
        matrix: Square CSR matrix.
        order: Permutation of ``range(n_rows)``: the old index placed at
            each new position.

    Returns:
        The permuted matrix (both rows and columns relabeled).
    """
    order = np.asarray(order, dtype=np.int64)
    n = matrix.n_rows
    if matrix.n_cols != n:
        raise ValueError("symmetric permutation requires a square matrix")
    if sorted(order.tolist()) != list(range(n)):
        raise ValueError("order must be a permutation of range(n_rows)")
    inverse = np.empty(n, dtype=np.int64)
    inverse[order] = np.arange(n)
    lengths = matrix.row_lengths[order]
    row_pointers = np.concatenate(([0], np.cumsum(lengths)))
    column_indices = np.empty(matrix.nnz, dtype=np.int64)
    values = np.empty(matrix.nnz, dtype=np.float64)
    for new_row, old_row in enumerate(order):
        lo, hi = matrix.row_pointers[old_row], matrix.row_pointers[old_row + 1]
        dst = row_pointers[new_row]
        column_indices[dst: dst + hi - lo] = inverse[
            matrix.column_indices[lo:hi]
        ]
        values[dst: dst + hi - lo] = matrix.values[lo:hi]
    return CSRMatrix(
        n_rows=n,
        n_cols=n,
        row_pointers=row_pointers,
        column_indices=column_indices,
        values=values,
    )


def degree_sort_order(matrix: CSRMatrix, descending: bool = True) -> np.ndarray:
    """Row order by degree (stable)."""
    lengths = matrix.row_lengths
    order = np.argsort(-lengths if descending else lengths, kind="stable")
    return order.astype(np.int64)


def bfs_order(matrix: CSRMatrix, start: int = 0) -> np.ndarray:
    """Breadth-first row order, restarting at unvisited nodes.

    A light-weight Cuthill-McKee relative: neighbours are visited in
    column order, giving the banded locality reordering frameworks use.
    """
    n = matrix.n_rows
    if not 0 <= start < max(n, 1):
        raise ValueError(f"start {start} out of range [0, {n})")
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    count = 0
    queue: deque[int] = deque()
    for seed in [start] + [i for i in range(n) if i != start]:
        if visited[seed]:
            continue
        visited[seed] = True
        queue.append(seed)
        while queue:
            node = queue.popleft()
            order[count] = node
            count += 1
            cols, _ = matrix.row_slice(node)
            for neighbour in cols:
                if not visited[neighbour]:
                    visited[neighbour] = True
                    queue.append(int(neighbour))
    return order


def random_order(matrix: CSRMatrix, seed: int = 0) -> np.ndarray:
    """A seeded random permutation of the rows."""
    rng = np.random.default_rng(seed)
    order = np.arange(matrix.n_rows, dtype=np.int64)
    rng.shuffle(order)
    return order
