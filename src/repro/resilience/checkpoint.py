"""JSON checkpoint/resume for experiment batches.

A :class:`BatchCheckpoint` records, after every completed experiment, the
batch's spec and each finished :class:`ExperimentResult`.  A killed batch
re-invoked with ``--resume`` rehydrates the completed results and runs
only what remains, producing the same result set as an uninterrupted run.

The file is a single self-describing JSON document::

    {
      "schema": "repro.resilience.checkpoint/1",
      "names": ["fig1", "fig2", ...],          # the batch spec
      "completed": {"fig1": {<ExperimentResult.to_dict()>}, ...},
      "updated": "2026-08-06T12:00:00"
    }

Every update is written atomically (:func:`repro.formats.io.atomic_write_text`),
so a kill mid-save leaves the previous checkpoint intact rather than a
truncated file.
"""

from __future__ import annotations

import json
from datetime import datetime
from pathlib import Path

from repro import obs
from repro.experiments.reporting import ExperimentResult
from repro.formats.io import atomic_write_text

SCHEMA = "repro.resilience.checkpoint/1"


class CheckpointError(RuntimeError):
    """A checkpoint file is unreadable or inconsistent with the batch."""


class BatchCheckpoint:
    """Durable progress record for one experiment batch.

    Build with :meth:`open`; call :meth:`record` after each experiment
    and :meth:`result_for` before running one.
    """

    def __init__(self, path: Path, names: list[str]) -> None:
        self.path = Path(path)
        self.names = list(names)
        self.completed: dict[str, dict] = {}

    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls, path: "Path | str", names: list[str], resume: bool = False
    ) -> "BatchCheckpoint":
        """Open (or create) a checkpoint for a batch.

        Args:
            path: Checkpoint file location.
            names: The batch's experiment names, in order.
            resume: When ``True`` and the file exists, load completed
                results (the stored batch spec must match ``names``);
                otherwise start fresh, overwriting any stale file.

        Raises:
            CheckpointError: On an unreadable file or a batch mismatch.
        """
        checkpoint = cls(Path(path), names)
        if resume and checkpoint.path.exists():
            checkpoint._load()
        else:
            checkpoint._write()
        return checkpoint

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"cannot read checkpoint {self.path}: {exc}"
            ) from exc
        if not isinstance(data, dict) or data.get("schema") != SCHEMA:
            raise CheckpointError(
                f"{self.path} is not a {SCHEMA} checkpoint"
            )
        stored = data.get("names", [])
        if stored != self.names:
            raise CheckpointError(
                f"checkpoint batch {stored} does not match requested batch "
                f"{self.names}; pass the same experiment list or start fresh"
            )
        completed = data.get("completed", {})
        unknown = sorted(set(completed) - set(self.names))
        if unknown:
            raise CheckpointError(
                f"checkpoint holds results for unknown experiments {unknown}"
            )
        self.completed = dict(completed)
        obs.counter("resilience.checkpoint.resumed_experiments").inc(
            len(self.completed)
        )

    def _write(self) -> None:
        document = {
            "schema": SCHEMA,
            "names": self.names,
            "completed": self.completed,
            "updated": datetime.now().isoformat(timespec="seconds"),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            self.path, json.dumps(document, indent=1) + "\n", encoding="utf-8"
        )

    # ------------------------------------------------------------------
    def record(self, name: str, result: ExperimentResult) -> None:
        """Persist one completed experiment's result (atomic write)."""
        if name not in self.names:
            raise CheckpointError(f"{name!r} is not part of this batch")
        self.completed[name] = result.to_dict()
        self._write()
        obs.counter("resilience.checkpoint.writes").inc()

    def result_for(self, name: str) -> "ExperimentResult | None":
        """The stored result for ``name``, or ``None`` if not completed."""
        data = self.completed.get(name)
        return None if data is None else ExperimentResult.from_dict(data)

    @property
    def remaining(self) -> list[str]:
        """Batch experiments not yet completed, in batch order."""
        return [n for n in self.names if n not in self.completed]

    @property
    def done(self) -> bool:
        return not self.remaining
