"""The *process-isolation* containment matrix behind ``python -m repro chaos-proc``.

``chaos-serve`` proves the thread-tier guards; this suite attacks the
``isolation="process"`` tier (:mod:`repro.serve.procpool` over
:mod:`repro.shm`) with the failures threads fundamentally cannot
contain, and demands **100% containment**: every scenario must end with
the service ``HEALTHY`` or ``DEGRADED`` with an explanatory cause,
every affected request must resolve to a terminal status, and every
accepted output must match the scipy oracle — zero silent wrong
answers:

* **SIGKILL mid-batch** — a worker killed from outside while computing
  must fail exactly its batch with terminal ``worker_crashed``; queued
  requests on other workers still complete, and the supervisor
  respawns the dead worker so traffic keeps flowing;
* **busy-loop hang** — a worker spinning forever (injected
  ``hang_proc``) must be SIGKILLed by the reaper at the batch budget
  (the thread tier could only *abandon* it) and its batch must resolve
  terminally;
* **heartbeat loss** — an *idle* worker that stops beating (SIGSTOP)
  must be presumed wedged, SIGKILLed, and surfaced as the
  ``heartbeat-misses-high`` health cause;
* **memory hog** — a worker ballooning its RSS must be killed by the
  pool's RSS guard *before* the OS OOM-killer picks a victim at
  random; separately, a pool past its admission highwater must shed
  new requests with ``rejected`` and report ``memory-pressure``;
* **poison request** — content that repeatedly kills workers must be
  quarantined after ``poison_threshold`` strikes: answered immediately
  with terminal ``quarantined``, never again allowed near a worker,
  with the ``worker-quarantine-active`` health cause raised while
  different content keeps serving;
* **torn segment** — a corrupted shared CSR segment must be *detected*
  by the attach-time checksums (never computed on), republished from
  the parent's pristine copy, and the retried request must return the
  correct product.

Throughout, the suite asserts the zero-copy invariant: no worker ever
copies graph bytes to serve a request
(``per_request_graph_bytes_copied == 0``).  The run writes a
``BENCH_chaos_proc.json`` run record; exit status 0 requires zero
silent cases and every containment mechanism demonstrably exercised.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.formats import CSRMatrix
from repro.graphs.generators import power_law_graph
from repro.resilience import faults
from repro.resilience.chaos import (
    DETECTED,
    OK,
    RECOVERED,
    SILENT,
    ChaosCase,
)
from repro.resilience.oracles import reference_spmm
from repro.serve.health import DEGRADED, HEALTHY, HealthPolicy
from repro.serve.procpool import (
    QUARANTINED,
    WORKER_CRASHED,
    ProcPoolConfig,
    rss_bytes,
)
from repro.serve.service import REJECTED, InferenceService, ServeConfig

_DIM = 8
_KIND = "process"
_MIB = 1 << 20


@dataclass
class ProcChaosReport:
    """Aggregate result of one process-isolation containment run."""

    seed: int
    cases: "list[ChaosCase]" = field(default_factory=list)
    crash_contained: int = 0
    hang_reaps: int = 0
    heartbeat_reaps: int = 0
    rss_kills: int = 0
    memory_sheds: int = 0
    quarantines: int = 0
    segments_republished: int = 0
    worker_restarts: int = 0
    verified_responses: int = 0
    per_request_graph_bytes_copied: int = 0

    @property
    def silent(self) -> "list[ChaosCase]":
        return [c for c in self.cases if not c.caught]

    @property
    def coverage(self) -> float:
        if not self.cases:
            return 1.0
        return (len(self.cases) - len(self.silent)) / len(self.cases)

    @property
    def passed(self) -> bool:
        """Zero silent cases, every mechanism exercised, zero-copy held."""
        return (
            not self.silent
            and self.crash_contained >= 1
            and self.hang_reaps >= 1
            and self.heartbeat_reaps >= 1
            and self.rss_kills >= 1
            and self.memory_sheds >= 1
            and self.quarantines >= 1
            and self.segments_republished >= 1
            and self.worker_restarts >= 1
            and self.per_request_graph_bytes_copied == 0
        )

    def to_dict(self) -> dict:
        outcomes: "dict[str, int]" = {}
        for case in self.cases:
            outcomes[case.outcome] = outcomes.get(case.outcome, 0) + 1
        return {
            "seed": self.seed,
            "n_cases": len(self.cases),
            "coverage": self.coverage,
            "passed": self.passed,
            "outcomes": outcomes,
            "demonstrations": {
                "crash_contained": self.crash_contained,
                "hang_reaps": self.hang_reaps,
                "heartbeat_reaps": self.heartbeat_reaps,
                "rss_kills": self.rss_kills,
                "memory_sheds": self.memory_sheds,
                "quarantines": self.quarantines,
                "segments_republished": self.segments_republished,
                "worker_restarts": self.worker_restarts,
                "verified_responses": self.verified_responses,
                "per_request_graph_bytes_copied": (
                    self.per_request_graph_bytes_copied
                ),
            },
            "cases": [c.to_dict() for c in self.cases],
        }

    def render(self) -> str:
        lines = [
            f"process-isolation chaos matrix (seed={self.seed}): "
            f"{len(self.cases)} cases"
        ]
        width = max(len(c.name) for c in self.cases) if self.cases else 0
        for case in self.cases:
            lines.append(
                f"  {case.name:<{width}}  [{case.expected_layer:<10}] "
                f"-> {case.outcome}"
                + (f"  ({case.detail})" if case.detail and not case.caught else "")
            )
        lines.append(
            f"containment coverage: {self.coverage:.0%} "
            f"({len(self.cases) - len(self.silent)}/{len(self.cases)} contained)"
        )
        lines.append(
            f"demonstrated: {self.crash_contained} crash(es) contained, "
            f"{self.hang_reaps} hang reap(s), "
            f"{self.heartbeat_reaps} heartbeat reap(s), "
            f"{self.rss_kills} RSS kill(s), {self.memory_sheds} memory "
            f"shed(s), {self.quarantines} quarantine(s), "
            f"{self.segments_republished} segment republish(es), "
            f"{self.worker_restarts} worker restart(s), "
            f"{self.verified_responses} outputs oracle-verified, "
            f"{self.per_request_graph_bytes_copied} graph bytes copied "
            "per request"
        )
        if self.silent:
            lines.append(
                "SILENT failures: " + ", ".join(c.name for c in self.silent)
            )
        return "\n".join(lines)


def _base_matrix(seed: int) -> CSRMatrix:
    return power_law_graph(n_nodes=60, nnz=360, max_degree=16, seed=seed)


def _proc_config(**overrides) -> ProcPoolConfig:
    """Fast-reaping pool tunables shared by every scenario."""
    settings = dict(
        n_workers=2,
        heartbeat_interval=0.02,
        heartbeat_timeout=0.6,
        hang_timeout=0.8,
        poison_threshold=2,
        restart_budget=16,
        restart_window=60.0,
    )
    settings.update(overrides)
    return ProcPoolConfig(**settings)


def _service(proc_config: ProcPoolConfig, **serve_overrides) -> InferenceService:
    settings = dict(
        max_queue=64,
        max_batch=1,
        max_wait_ms=0.0,
        n_workers=2,
        verify=True,
        request_timeout=5.0,
        isolation="process",
    )
    settings.update(serve_overrides)
    return InferenceService(
        config=ServeConfig(**settings), proc_config=proc_config
    )


def _verify_ok(
    report: ProcChaosReport,
    matrix: CSRMatrix,
    dense: np.ndarray,
    response,
    problems: "list[str]",
    label: str,
) -> None:
    """Every accepted output must match the scipy reference — always."""
    if not response.ok:
        return
    report.verified_responses += 1
    if not np.allclose(
        response.output, reference_spmm(matrix, dense), rtol=1e-9, atol=1e-9
    ):
        problems.append(
            f"{label}: accepted output for request {response.request_id} "
            "disagrees with the reference"
        )


def _wait_for(predicate, timeout: float = 5.0, interval: float = 0.005) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _busy_pids(pool) -> "list[int]":
    with pool._cond:
        return [
            s.proc.pid
            for s in pool._slots.values()
            if s.job is not None and not s.dead and s.proc.is_alive()
        ]


def _live_pids(pool) -> "list[int]":
    with pool._cond:
        return [
            s.proc.pid
            for s in pool._slots.values()
            if not s.dead and s.proc.is_alive()
        ]


def _absorb_pool_stats(report: ProcChaosReport, pool) -> None:
    snapshot = pool.snapshot()
    report.worker_restarts += snapshot["supervisor"].get("restarts", 0)
    report.segments_republished += snapshot["segments"]["republished"]
    report.per_request_graph_bytes_copied = max(
        report.per_request_graph_bytes_copied,
        snapshot["zero_copy"]["per_request_graph_bytes_copied"],
    )


def _healthy_or_degraded(service: InferenceService, problems: "list[str]",
                         label: str) -> str:
    health = service.health()
    if health.status not in (HEALTHY, DEGRADED):
        problems.append(
            f"{label}: scenario ended {health.status} "
            f"({[c.kind for c in health.causes]})"
        )
    elif health.status == DEGRADED and not health.causes:
        problems.append(f"{label}: DEGRADED without an explanatory cause")
    return health.status


def _run_sigkill_scenario(
    report: ProcChaosReport, seed: int, rng: np.random.Generator
) -> None:
    """External SIGKILL of a busy worker: one batch fails, the rest flow."""
    matrix = _base_matrix(seed)
    problems: "list[str]" = []
    with _service(_proc_config()) as service:
        pool = service._proc_pool
        # Open a kill window: the victim batch sleeps inside the worker
        # before computing, long enough to aim an external SIGKILL.
        with faults.inject(seed=seed, delay_proc=1.0, delay_proc_seconds=0.6):
            victim_dense = rng.random((matrix.n_cols, _DIM))
            victim = service.submit(matrix, victim_dense)
            aimed = _wait_for(lambda: _busy_pids(pool), timeout=3.0)
        bystander_dense = rng.random((matrix.n_cols, _DIM))
        bystander = service.submit(matrix, bystander_dense)
        if aimed:
            for pid in _busy_pids(pool):
                os.kill(pid, signal.SIGKILL)
        victim_response = victim.result(timeout=30.0)
        bystander_response = bystander.result(timeout=30.0)
        _verify_ok(report, matrix, bystander_dense, bystander_response,
                   problems, "sigkill-bystander")
        if not aimed:
            report.cases.append(
                ChaosCase(
                    "sigkill-mid-batch/contained", _KIND, "procpool", SILENT,
                    "no worker ever went busy — kill window never opened",
                )
            )
        elif victim_response.status == WORKER_CRASHED:
            report.crash_contained += 1
            report.cases.append(
                ChaosCase(
                    "sigkill-mid-batch/contained", _KIND, "procpool",
                    DETECTED, victim_response.error or "",
                )
            )
        else:
            report.cases.append(
                ChaosCase(
                    "sigkill-mid-batch/contained", _KIND, "procpool", SILENT,
                    f"killed batch resolved as {victim_response.status!r} "
                    f"({victim_response.error})",
                )
            )

        # The pool must respawn and keep serving.
        respawned = _wait_for(
            lambda: pool.supervisor.restarts >= 1
            and len(_live_pids(pool)) >= pool.config.n_workers,
            timeout=5.0,
        )
        after_dense = rng.random((matrix.n_cols, _DIM))
        after = service.submit(matrix, after_dense).result(timeout=30.0)
        _verify_ok(report, matrix, after_dense, after, problems,
                   "sigkill-after")
        status = _healthy_or_degraded(service, problems, "sigkill")
        if respawned and bystander_response.ok and after.ok and not problems:
            report.cases.append(
                ChaosCase(
                    "sigkill-mid-batch/pool-recovers", _KIND, "supervisor",
                    RECOVERED,
                    f"{pool.supervisor.restarts} respawn(s), bystander and "
                    f"follow-up served, health={status}",
                )
            )
        else:
            report.cases.append(
                ChaosCase(
                    "sigkill-mid-batch/pool-recovers", _KIND, "supervisor",
                    SILENT,
                    f"respawned={respawned} "
                    f"bystander={bystander_response.status} "
                    f"after={after.status} health={status}; "
                    + "; ".join(problems),
                )
            )
        _absorb_pool_stats(report, pool)


def _run_hang_scenario(
    report: ProcChaosReport, seed: int, rng: np.random.Generator
) -> None:
    """A busy-looping worker is SIGKILLed at the batch budget."""
    matrix = _base_matrix(seed + 1)
    problems: "list[str]" = []
    with _service(_proc_config()) as service:
        pool = service._proc_pool
        with faults.inject(seed=seed, hang_proc=1.0) as plan:
            dense = rng.random((matrix.n_cols, _DIM))
            started = time.monotonic()
            response = service.submit(matrix, dense).result(timeout=30.0)
            elapsed = time.monotonic() - started
        if plan.total_injected == 0:
            report.cases.append(
                ChaosCase(
                    "busy-hang/reaped-at-budget", _KIND, "reaper", SILENT,
                    "fault plan injected nothing",
                )
            )
        elif (
            response.status == WORKER_CRASHED
            and pool.kills["hang-timeout"] >= 1
        ):
            report.hang_reaps += pool.kills["hang-timeout"]
            report.cases.append(
                ChaosCase(
                    "busy-hang/reaped-at-budget", _KIND, "reaper", DETECTED,
                    f"SIGKILLed {elapsed:.2f}s into a "
                    f"{pool.config.hang_timeout:.1f}s budget: "
                    f"{response.error}",
                )
            )
        else:
            report.cases.append(
                ChaosCase(
                    "busy-hang/reaped-at-budget", _KIND, "reaper", SILENT,
                    f"status={response.status!r} "
                    f"hang_kills={pool.kills['hang-timeout']} "
                    f"({response.error})",
                )
            )
        after_dense = rng.random((matrix.n_cols, _DIM))
        after = service.submit(matrix, after_dense).result(timeout=30.0)
        _verify_ok(report, matrix, after_dense, after, problems, "hang-after")
        status = _healthy_or_degraded(service, problems, "hang")
        if after.ok and not problems:
            report.cases.append(
                ChaosCase(
                    "busy-hang/pool-recovers", _KIND, "supervisor", RECOVERED,
                    f"served after respawn, health={status}",
                )
            )
        else:
            report.cases.append(
                ChaosCase(
                    "busy-hang/pool-recovers", _KIND, "supervisor", SILENT,
                    f"after={after.status} health={status}; "
                    + "; ".join(problems),
                )
            )
        _absorb_pool_stats(report, pool)


def _run_heartbeat_scenario(
    report: ProcChaosReport, seed: int, rng: np.random.Generator
) -> None:
    """An idle worker that stops beating (SIGSTOP) is presumed wedged."""
    matrix = _base_matrix(seed + 2)
    problems: "list[str]" = []
    with _service(_proc_config()) as service:
        pool = service._proc_pool
        warm_dense = rng.random((matrix.n_cols, _DIM))
        warm = service.submit(matrix, warm_dense).result(timeout=30.0)
        _verify_ok(report, matrix, warm_dense, warm, problems, "heartbeat-warm")
        pids = _live_pids(pool)
        if pids:
            os.kill(pids[0], signal.SIGSTOP)
        reaped = _wait_for(
            lambda: pool.kills["heartbeat-miss"] >= 1, timeout=5.0
        )
        if reaped:
            report.heartbeat_reaps += pool.kills["heartbeat-miss"]
            report.cases.append(
                ChaosCase(
                    "heartbeat-loss/reaped", _KIND, "reaper", DETECTED,
                    "idle worker went silent past "
                    f"{pool.config.heartbeat_timeout:.1f}s and was SIGKILLed",
                )
            )
        else:
            report.cases.append(
                ChaosCase(
                    "heartbeat-loss/reaped", _KIND, "reaper", SILENT,
                    "stopped worker was never reaped "
                    f"(kills={pool.kills})",
                )
            )
        health = service.health(HealthPolicy(heartbeat_kills_degraded=1))
        if health.status == DEGRADED and any(
            c.kind == "heartbeat-misses-high" for c in health.causes
        ):
            report.cases.append(
                ChaosCase(
                    "heartbeat-loss/health-cause", _KIND, "health", DETECTED,
                    f"{health.status}: heartbeat-misses-high raised",
                )
            )
        else:
            report.cases.append(
                ChaosCase(
                    "heartbeat-loss/health-cause", _KIND, "health", SILENT,
                    f"health={health.status} "
                    f"causes={[c.kind for c in health.causes]}",
                )
            )
        after_dense = rng.random((matrix.n_cols, _DIM))
        after = service.submit(matrix, after_dense).result(timeout=30.0)
        _verify_ok(report, matrix, after_dense, after, problems,
                   "heartbeat-after")
        if not after.ok:
            problems.append(f"heartbeat: follow-up failed ({after.error})")
        if problems:
            report.cases.append(
                ChaosCase(
                    "heartbeat-loss/outputs", _KIND, "oracle", SILENT,
                    "; ".join(problems),
                )
            )
        _absorb_pool_stats(report, pool)


def _run_memory_scenario(
    report: ProcChaosReport, seed: int, rng: np.random.Generator
) -> None:
    """RSS guard kills a hog; admission sheds past the pool highwater."""
    matrix = _base_matrix(seed + 3)
    problems: "list[str]" = []
    # Phase A: a worker balloons its RSS mid-batch; the reaper's RSS
    # guard must SIGKILL it before the balloon finishes growing.
    limit = rss_bytes() + 128 * _MIB
    with _service(
        _proc_config(worker_rss_limit_bytes=limit, hang_timeout=3.0)
    ) as service:
        pool = service._proc_pool
        with faults.inject(seed=seed, hog_proc=1.0) as plan:
            dense = rng.random((matrix.n_cols, _DIM))
            response = service.submit(matrix, dense).result(timeout=30.0)
        if plan.total_injected == 0:
            report.cases.append(
                ChaosCase(
                    "memory-hog/rss-guard-kills", _KIND, "reaper", SILENT,
                    "fault plan injected nothing",
                )
            )
        elif response.status == WORKER_CRASHED and pool.kills["rss-limit"] >= 1:
            report.rss_kills += pool.kills["rss-limit"]
            report.cases.append(
                ChaosCase(
                    "memory-hog/rss-guard-kills", _KIND, "reaper", DETECTED,
                    f"hog SIGKILLed past the {limit // _MIB} MiB limit: "
                    f"{response.error}",
                )
            )
        else:
            report.cases.append(
                ChaosCase(
                    "memory-hog/rss-guard-kills", _KIND, "reaper", SILENT,
                    f"status={response.status!r} kills={pool.kills} "
                    f"({response.error})",
                )
            )
        after_dense = rng.random((matrix.n_cols, _DIM))
        after = service.submit(matrix, after_dense).result(timeout=30.0)
        _verify_ok(report, matrix, after_dense, after, problems, "hog-after")
        if not after.ok:
            problems.append(f"hog: follow-up failed ({after.error})")
        _healthy_or_degraded(service, problems, "hog")
        _absorb_pool_stats(report, pool)

    # Phase B: with the pool already past its admission highwater, new
    # requests must be shed at admission, never queued for a worker.
    with _service(
        _proc_config(memory_highwater_bytes=1)
    ) as service:
        pool = service._proc_pool
        shed = service.submit(
            matrix, rng.random((matrix.n_cols, _DIM))
        ).result(timeout=30.0)
        health = service.health()
        if (
            shed.status == REJECTED
            and "memory pressure" in (shed.error or "")
            and health.status == DEGRADED
            and any(c.kind == "memory-pressure" for c in health.causes)
        ):
            report.memory_sheds += 1
            report.cases.append(
                ChaosCase(
                    "memory-highwater/sheds-at-admission", _KIND, "admission",
                    DETECTED,
                    f"{shed.status}: {shed.error}; health raised "
                    "memory-pressure",
                )
            )
        else:
            report.cases.append(
                ChaosCase(
                    "memory-highwater/sheds-at-admission", _KIND, "admission",
                    SILENT,
                    f"status={shed.status!r} ({shed.error}) "
                    f"health={health.status} "
                    f"causes={[c.kind for c in health.causes]}",
                )
            )
        _absorb_pool_stats(report, pool)
    if problems:
        report.cases.append(
            ChaosCase(
                "memory/outputs", _KIND, "oracle", SILENT, "; ".join(problems)
            )
        )


def _run_poison_scenario(
    report: ProcChaosReport, seed: int, rng: np.random.Generator
) -> None:
    """Content that keeps killing workers is quarantined, not retried."""
    matrix = _base_matrix(seed + 4)
    problems: "list[str]" = []
    with _service(_proc_config()) as service:
        pool = service._proc_pool
        poison_dense = rng.random((matrix.n_cols, _DIM))
        statuses = []
        with faults.inject(seed=seed, crash_proc=1.0):
            for _ in range(pool.config.poison_threshold):
                statuses.append(
                    service.submit(matrix, poison_dense)
                    .result(timeout=30.0)
                    .status
                )
        # Outside the fault plan the content itself is harmless, but its
        # record already crossed the threshold: admission must answer
        # `quarantined` without letting it near a worker.
        third = service.submit(matrix, poison_dense).result(timeout=30.0)
        if (
            all(s == WORKER_CRASHED for s in statuses)
            and third.status == QUARANTINED
            and pool.quarantine_size() >= 1
        ):
            report.quarantines += pool.quarantine_size()
            report.cases.append(
                ChaosCase(
                    "poison-request/quarantined", _KIND, "quarantine",
                    DETECTED,
                    f"{len(statuses)} worker deaths then terminal "
                    f"{third.status!r} at admission: {third.error}",
                )
            )
        else:
            report.cases.append(
                ChaosCase(
                    "poison-request/quarantined", _KIND, "quarantine", SILENT,
                    f"strike statuses={statuses} third={third.status!r} "
                    f"quarantined={pool.quarantine_size()}",
                )
            )
        # Different content must still serve while the quarantine holds,
        # and health must explain the degradation.
        other_dense = rng.random((matrix.n_cols, _DIM))
        other = service.submit(matrix, other_dense).result(timeout=30.0)
        _verify_ok(report, matrix, other_dense, other, problems,
                   "poison-other")
        health = service.health()
        if (
            other.ok
            and health.status == DEGRADED
            and any(
                c.kind == "worker-quarantine-active" for c in health.causes
            )
            and not problems
        ):
            report.cases.append(
                ChaosCase(
                    "poison-request/pool-survives", _KIND, "health", RECOVERED,
                    "different content served; health="
                    f"{health.status} with worker-quarantine-active",
                )
            )
        else:
            report.cases.append(
                ChaosCase(
                    "poison-request/pool-survives", _KIND, "health", SILENT,
                    f"other={other.status!r} health={health.status} "
                    f"causes={[c.kind for c in health.causes]}; "
                    + "; ".join(problems),
                )
            )
        _absorb_pool_stats(report, pool)


def _run_torn_segment_scenario(
    report: ProcChaosReport, seed: int, rng: np.random.Generator
) -> None:
    """A corrupted shared segment is detected, republished, recomputed."""
    matrix = _base_matrix(seed + 5)
    problems: "list[str]" = []
    with _service(_proc_config()) as service:
        pool = service._proc_pool
        warm_dense = rng.random((matrix.n_cols, _DIM))
        warm = service.submit(matrix, warm_dense).result(timeout=30.0)
        _verify_ok(report, matrix, warm_dense, warm, problems, "torn-warm")
        if not warm.ok:
            problems.append(f"torn: warm-up failed ({warm.error})")
        # Tear the published pages, then SIGKILL the workers so their
        # respawns must re-attach — and re-verify — the torn segment.
        with pool._seg_lock:
            segments = list(pool._segments.values())
        if segments:
            buffer = segments[0].buffer()
            offset = segments[0].meta.values_offset
            buffer[offset] = buffer[offset] ^ 0xFF
        killed = set(_live_pids(pool))
        for pid in killed:
            os.kill(pid, signal.SIGKILL)
        # Wait for *fresh* respawns — the old pids linger in the slot
        # table until their death paths run, and a request landing on a
        # dying slot would resolve as a plain crash instead of
        # exercising the re-attach checksum.
        _wait_for(
            lambda: (
                len(set(_live_pids(pool)) - killed) >= pool.config.n_workers
            ),
            timeout=5.0,
        )
        dense = rng.random((matrix.n_cols, _DIM))
        response = service.submit(matrix, dense).result(timeout=30.0)
        _verify_ok(report, matrix, dense, response, problems, "torn-retry")
        status = _healthy_or_degraded(service, problems, "torn")
        if (
            segments
            and response.ok
            and pool.republished >= 1
            and not problems
        ):
            report.cases.append(
                ChaosCase(
                    "torn-segment/detected-republished", _KIND, "checksum",
                    RECOVERED,
                    "attach checksums caught the tear; republished "
                    f"{pool.republished} segment(s), retried correctly, "
                    f"health={status}",
                )
            )
        else:
            report.cases.append(
                ChaosCase(
                    "torn-segment/detected-republished", _KIND, "checksum",
                    SILENT,
                    f"response={response.status!r} ({response.error}) "
                    f"republished={pool.republished} health={status}; "
                    + "; ".join(problems),
                )
            )
        _absorb_pool_stats(report, pool)


def run_proc_chaos(seed: int = 0) -> ProcChaosReport:
    """Run every process-isolation chaos scenario with a fixed seed."""
    report = ProcChaosReport(seed=seed)
    rng = np.random.default_rng(seed)
    with obs.span("resilience.chaos_proc.run", seed=seed):
        _run_sigkill_scenario(report, seed, rng)
        _run_hang_scenario(report, seed, rng)
        _run_heartbeat_scenario(report, seed, rng)
        _run_memory_scenario(report, seed, rng)
        _run_poison_scenario(report, seed, rng)
        _run_torn_segment_scenario(report, seed, rng)
    obs.counter("resilience.chaos_proc.runs").inc()
    obs.gauge("resilience.chaos_proc.coverage").set(report.coverage)
    obs.counter("resilience.chaos_proc.silent_cases").inc(len(report.silent))
    return report


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point for ``python -m repro chaos-proc``."""
    parser = argparse.ArgumentParser(
        prog="repro chaos-proc",
        description=(
            "Attack the process-isolated serving tier (worker SIGKILLs, "
            "busy-loop hangs, heartbeat loss, memory hogs, poison "
            "requests, torn shared-memory segments) and verify every "
            "failure is contained with a terminal status, an explanatory "
            "health cause, and zero oracle disagreements."
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="injection seed (default: 0)"
    )
    parser.add_argument(
        "--bench-dir",
        default=None,
        help="run-record directory (default: benchmarks/results)",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        help="also write the full report as JSON to this path",
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip writing the BENCH_chaos_proc.json run record",
    )
    args = parser.parse_args(argv)

    with obs.profiled() as session:
        report = run_proc_chaos(seed=args.seed)
    print(report.render())

    if not args.no_record:
        record = obs.run_record(
            "chaos_proc",
            metrics=session.snapshot(),
            wall_seconds=session.wall_seconds,
            status="ok" if report.passed else "silent-failures",
            extra={"chaos_proc": report.to_dict()},
        )
        path = obs.write_run_record(record, args.bench_dir)
        print(f"run record: {path}")
    if args.json_out:
        from repro.formats.io import atomic_write_text

        atomic_write_text(
            args.json_out,
            json.dumps(report.to_dict(), indent=1) + "\n",
            encoding="utf-8",
        )
        print(f"report: {args.json_out}")
    return 0 if report.passed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
