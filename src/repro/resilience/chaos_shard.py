"""The *shard-tier* containment matrix behind ``python -m repro chaos-shard``.

``chaos-proc`` proves one pool's containment; this suite attacks the
sharded execution tier (:mod:`repro.shard.router` over per-shard
:mod:`repro.serve.procpool` pools) and demands that every failure stays
**contained to the victim shard**:

* **shard-kill replay** — a shard worker SIGKILLed mid-batch must cost
  exactly one sub-batch replay on that shard's respawned worker: the
  request still returns the correct gathered product, the router
  reports ``replays >= 1``, and *only* the victim shard's supervisor
  records a restart — the other shards never notice;
* **shard exhaustion** — when one shard's restart budget is spent, the
  batch resolves terminally (``worker_crashed``), service health goes
  ``UNHEALTHY`` with ``shard-pool-exhausted`` naming the dead shard,
  admission sheds subsequent requests, and the surviving shards'
  supervisors show zero restarts;
* **epoch re-partition** — a compacted (new-fingerprint) graph must be
  re-partitioned rather than served from the stale plan: both epochs'
  outputs verify against the scipy oracle, and invalidating the retired
  fingerprint drops exactly the retired partition.

Throughout, every accepted output is verified against the scipy
reference, and the zero-copy invariant must hold (no worker ever copies
graph bytes to serve a request).  The run writes a
``BENCH_chaos_shard.json`` run record; exit status 0 requires zero
silent cases and every containment mechanism demonstrably exercised.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.graphs.generators import power_law_graph
from repro.resilience import faults
from repro.resilience.chaos import DETECTED, RECOVERED, SILENT, ChaosCase
from repro.resilience.oracles import reference_spmm
from repro.serve.health import UNHEALTHY
from repro.serve.procpool import WORKER_CRASHED, ProcPoolConfig
from repro.serve.service import REJECTED, InferenceService, ServeConfig
from repro.shard.router import ShardConfig, ShardRouter

_DIM = 8
_KIND = "shard"


@dataclass
class ShardChaosReport:
    """Aggregate result of one shard-tier containment run."""

    seed: int
    cases: "list[ChaosCase]" = field(default_factory=list)
    replays: int = 0
    contained_kills: int = 0
    shard_exhaustions: int = 0
    repartitions: int = 0
    verified_responses: int = 0
    per_request_graph_bytes_copied: int = 0

    @property
    def silent(self) -> "list[ChaosCase]":
        """Cases the shard tier failed to detect or recover."""
        return [c for c in self.cases if not c.caught]

    @property
    def coverage(self) -> float:
        """Fraction of cases caught (detected or recovered)."""
        if not self.cases:
            return 1.0
        return (len(self.cases) - len(self.silent)) / len(self.cases)

    @property
    def passed(self) -> bool:
        """Zero silent cases, every mechanism exercised, zero-copy held."""
        return (
            not self.silent
            and self.replays >= 1
            and self.contained_kills >= 1
            and self.shard_exhaustions >= 1
            and self.repartitions >= 1
            and self.verified_responses >= 1
            and self.per_request_graph_bytes_copied == 0
        )

    def to_dict(self) -> dict:
        """JSON-ready form for run records and CI assertions."""
        outcomes: "dict[str, int]" = {}
        for case in self.cases:
            outcomes[case.outcome] = outcomes.get(case.outcome, 0) + 1
        return {
            "seed": self.seed,
            "n_cases": len(self.cases),
            "coverage": self.coverage,
            "passed": self.passed,
            "outcomes": outcomes,
            "demonstrations": {
                "replays": self.replays,
                "contained_kills": self.contained_kills,
                "shard_exhaustions": self.shard_exhaustions,
                "repartitions": self.repartitions,
                "verified_responses": self.verified_responses,
                "per_request_graph_bytes_copied": (
                    self.per_request_graph_bytes_copied
                ),
            },
            "cases": [c.to_dict() for c in self.cases],
        }

    def render(self) -> str:
        """Human-readable chaos matrix for the console."""
        lines = [
            f"shard-tier chaos matrix (seed={self.seed}): "
            f"{len(self.cases)} cases"
        ]
        width = max(len(c.name) for c in self.cases) if self.cases else 0
        for case in self.cases:
            lines.append(
                f"  {case.name:<{width}}  [{case.expected_layer:<10}] "
                f"-> {case.outcome}"
                + (f"  ({case.detail})" if case.detail and not case.caught else "")
            )
        lines.append(
            f"containment coverage: {self.coverage:.0%} "
            f"({len(self.cases) - len(self.silent)}/{len(self.cases)} contained)"
        )
        lines.append(
            f"demonstrated: {self.replays} sub-batch replay(s), "
            f"{self.contained_kills} kill(s) contained to the victim shard, "
            f"{self.shard_exhaustions} shard exhaustion(s) surfaced, "
            f"{self.repartitions} re-partition(s) on new epochs, "
            f"{self.verified_responses} outputs oracle-verified, "
            f"{self.per_request_graph_bytes_copied} graph bytes copied "
            "per request"
        )
        if self.silent:
            lines.append(
                "SILENT failures: " + ", ".join(c.name for c in self.silent)
            )
        return "\n".join(lines)


def _base_matrix(seed: int):
    return power_law_graph(n_nodes=120, nnz=720, max_degree=24, seed=seed)


def _proc_template(**overrides) -> ProcPoolConfig:
    """Fast-reaping per-shard pool template shared by every scenario."""
    settings = dict(
        heartbeat_interval=0.02,
        heartbeat_timeout=0.6,
        hang_timeout=5.0,
        restart_budget=16,
        restart_window=60.0,
    )
    settings.update(overrides)
    return ProcPoolConfig(**settings)


def _wait_for(predicate, timeout: float = 5.0, interval: float = 0.005) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _busy_pids(pool) -> "list[int]":
    with pool._cond:
        return [
            s.proc.pid
            for s in pool._slots.values()
            if s.job is not None and not s.dead and s.proc.is_alive()
        ]


def _absorb_router_stats(report: ShardChaosReport, router: ShardRouter) -> None:
    snapshot = router.snapshot()
    report.per_request_graph_bytes_copied = max(
        report.per_request_graph_bytes_copied,
        snapshot["zero_copy"]["per_request_graph_bytes_copied"],
    )


def _verify(
    report: ShardChaosReport, matrix, dense, output, problems, label
) -> None:
    """Every accepted output must match the scipy reference — always."""
    if output is None:
        return
    report.verified_responses += 1
    if not np.allclose(
        output, reference_spmm(matrix, dense), rtol=1e-9, atol=1e-9
    ):
        problems.append(f"{label}: accepted output disagrees with the oracle")


def _run_shard_kill_scenario(
    report: ShardChaosReport, seed: int, rng: np.random.Generator
) -> None:
    """SIGKILL a busy shard worker mid-batch: replay, contained restart."""
    matrix = _base_matrix(seed)
    problems: "list[str]" = []
    config = ShardConfig(n_shards=2, replay_budget=2)
    with ShardRouter(config, proc_config=_proc_template()) as router:
        dense = rng.random((matrix.n_cols, _DIM))
        warm = router.execute(matrix, dense)
        _verify(report, matrix, dense, warm.output, problems, "kill-warm")

        # Open a kill window: every shard's sub-batch sleeps inside its
        # worker before computing, long enough to aim a SIGKILL at the
        # victim shard's busy worker.
        holder: "dict[str, object]" = {}
        import threading

        def submit() -> None:
            try:
                holder["result"] = router.execute(matrix, dense)
            except Exception as exc:  # noqa: BLE001 - recorded below
                holder["error"] = exc

        with faults.inject(seed=seed, delay_proc=1.0, delay_proc_seconds=0.5):
            thread = threading.Thread(target=submit, name="chaos-shard-submit")
            thread.start()
            aimed = _wait_for(
                lambda: _busy_pids(router.pools[0]), timeout=3.0
            )
            if aimed:
                time.sleep(0.1)  # let the victim settle into its delay
                for pid in _busy_pids(router.pools[0]):
                    os.kill(pid, signal.SIGKILL)
            thread.join(timeout=30.0)

        result = holder.get("result")
        output = getattr(result, "output", None)
        _verify(report, matrix, dense, output, problems, "kill-victim")
        snapshot = router.snapshot()
        victim_restarts = snapshot["shards"][0]["supervisor"]["restarts"]
        bystander_restarts = snapshot["shards"][1]["supervisor"]["restarts"]
        if not aimed:
            report.cases.append(
                ChaosCase(
                    "shard-kill/replayed", _KIND, "router", SILENT,
                    "shard 0 never went busy — kill window never opened",
                )
            )
        elif (
            result is not None
            and snapshot["replays"] >= 1
            and not problems
        ):
            report.replays += snapshot["replays"]
            report.cases.append(
                ChaosCase(
                    "shard-kill/replayed", _KIND, "router", DETECTED,
                    f"{snapshot['replays']} sub-batch replay(s) on the "
                    "respawned worker; gathered output verified",
                )
            )
        else:
            report.cases.append(
                ChaosCase(
                    "shard-kill/replayed", _KIND, "router", SILENT,
                    f"error={holder.get('error')} "
                    f"replays={snapshot['replays']}; " + "; ".join(problems),
                )
            )
        if aimed and victim_restarts >= 1 and bystander_restarts == 0:
            report.contained_kills += 1
            report.cases.append(
                ChaosCase(
                    "shard-kill/contained-to-victim", _KIND, "supervisor",
                    RECOVERED,
                    f"shard 0 restarted {victim_restarts}x, shard 1 "
                    "untouched",
                )
            )
        else:
            report.cases.append(
                ChaosCase(
                    "shard-kill/contained-to-victim", _KIND, "supervisor",
                    SILENT,
                    f"aimed={aimed} victim_restarts={victim_restarts} "
                    f"bystander_restarts={bystander_restarts}",
                )
            )
        _absorb_router_stats(report, router)


def _run_exhaustion_scenario(
    report: ShardChaosReport, seed: int, rng: np.random.Generator
) -> None:
    """A shard with a spent restart budget fails its batches terminally."""
    matrix = _base_matrix(seed + 1)
    problems: "list[str]" = []
    service = InferenceService(
        config=ServeConfig(
            max_queue=16,
            max_batch=1,
            max_wait_ms=0.0,
            n_workers=1,
            verify=False,
            request_timeout=10.0,
            isolation="shard",
            num_shards=2,
        ),
        proc_config=_proc_template(restart_budget=0),
    )
    with service:
        router = service._proc_pool
        warm_dense = rng.random((matrix.n_cols, _DIM))
        warm = service.submit(matrix, warm_dense).result(timeout=30.0)
        if warm.ok:
            _verify(report, matrix, warm_dense, warm.output, problems,
                    "exhaust-warm")
        else:
            problems.append(f"exhaust: warm-up failed ({warm.error})")

        import threading

        victim_dense = rng.random((matrix.n_cols, _DIM))
        with faults.inject(seed=seed, delay_proc=1.0, delay_proc_seconds=0.5):
            victim = service.submit(matrix, victim_dense)
            aimed = _wait_for(
                lambda: _busy_pids(router.pools[0]), timeout=3.0
            )
            if aimed:
                time.sleep(0.1)
                for pid in _busy_pids(router.pools[0]):
                    os.kill(pid, signal.SIGKILL)
        response = victim.result(timeout=30.0)

        snapshot = router.snapshot()
        exhausted_shards = snapshot["supervisor"]["exhausted_shards"]
        health = service.health()
        causes = {c.kind for c in health.causes}
        if (
            aimed
            and response.status == WORKER_CRASHED
            and exhausted_shards == [0]
        ):
            report.shard_exhaustions += 1
            report.cases.append(
                ChaosCase(
                    "shard-exhaustion/terminal-batch", _KIND, "supervisor",
                    DETECTED,
                    f"restart budget spent on shard 0: {response.error}",
                )
            )
        else:
            report.cases.append(
                ChaosCase(
                    "shard-exhaustion/terminal-batch", _KIND, "supervisor",
                    SILENT,
                    f"aimed={aimed} status={response.status!r} "
                    f"exhausted={exhausted_shards} ({response.error})",
                )
            )
        if health.status == UNHEALTHY and "shard-pool-exhausted" in causes:
            report.cases.append(
                ChaosCase(
                    "shard-exhaustion/health-cause", _KIND, "health",
                    DETECTED,
                    f"{health.status}: shard-pool-exhausted raised for "
                    f"shard(s) {exhausted_shards}",
                )
            )
        else:
            report.cases.append(
                ChaosCase(
                    "shard-exhaustion/health-cause", _KIND, "health", SILENT,
                    f"health={health.status} causes={sorted(causes)}",
                )
            )
        shed = service.submit(
            matrix, rng.random((matrix.n_cols, _DIM))
        ).result(timeout=30.0)
        bystander_restarts = snapshot["shards"][1]["supervisor"]["restarts"]
        if shed.status == REJECTED and bystander_restarts == 0 and not problems:
            report.cases.append(
                ChaosCase(
                    "shard-exhaustion/admission-sheds", _KIND, "admission",
                    DETECTED,
                    f"subsequent request {shed.status!r}; shard 1 untouched",
                )
            )
        else:
            report.cases.append(
                ChaosCase(
                    "shard-exhaustion/admission-sheds", _KIND, "admission",
                    SILENT,
                    f"status={shed.status!r} ({shed.error}) "
                    f"bystander_restarts={bystander_restarts}; "
                    + "; ".join(problems),
                )
            )
        _absorb_router_stats(report, router)


def _run_repartition_scenario(
    report: ShardChaosReport, seed: int, rng: np.random.Generator
) -> None:
    """A new graph epoch re-partitions; the retired plan invalidates."""
    matrix = _base_matrix(seed + 2)
    problems: "list[str]" = []
    with ShardRouter(
        ShardConfig(n_shards=2), proc_config=_proc_template()
    ) as router:
        dense = rng.random((matrix.n_cols, _DIM))
        first = router.execute(matrix, dense)
        _verify(report, matrix, dense, first.output, problems, "epoch-v0")

        # Compaction: same structure budget, different content — a new
        # value fingerprint that must not be served from the old plan.
        compacted = power_law_graph(
            n_nodes=120, nnz=720, max_degree=24, seed=seed + 99
        ).with_version((matrix.version or 0) + 1)
        second = router.execute(compacted, dense)
        _verify(report, matrix := compacted, dense, second.output, problems,
                "epoch-v1")

        cached = router.snapshot()["partitions_cached"]
        dropped = router.invalidate_fingerprint(
            _base_matrix(seed + 2).fingerprint()
        )
        if cached == 2 and dropped == 1 and not problems:
            report.repartitions += 1
            report.cases.append(
                ChaosCase(
                    "epoch-compaction/re-partitions", _KIND, "router",
                    RECOVERED,
                    "both epochs partitioned and verified; retiring the "
                    "old fingerprint dropped exactly its partition",
                )
            )
        else:
            report.cases.append(
                ChaosCase(
                    "epoch-compaction/re-partitions", _KIND, "router", SILENT,
                    f"cached={cached} dropped={dropped}; "
                    + "; ".join(problems),
                )
            )
        _absorb_router_stats(report, router)


def run_shard_chaos(seed: int = 0) -> ShardChaosReport:
    """Run every shard-tier chaos scenario with a fixed seed."""
    report = ShardChaosReport(seed=seed)
    rng = np.random.default_rng(seed)
    with obs.span("resilience.chaos_shard.run", seed=seed):
        _run_shard_kill_scenario(report, seed, rng)
        _run_exhaustion_scenario(report, seed, rng)
        _run_repartition_scenario(report, seed, rng)
    obs.counter("resilience.chaos_shard.runs").inc()
    obs.gauge("resilience.chaos_shard.coverage").set(report.coverage)
    obs.counter("resilience.chaos_shard.silent_cases").inc(len(report.silent))
    return report


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point for ``python -m repro chaos-shard``."""
    parser = argparse.ArgumentParser(
        prog="repro chaos-shard",
        description=(
            "Attack the sharded execution tier (shard-worker SIGKILLs "
            "mid-batch, spent restart budgets, epoch compactions) and "
            "verify every failure stays contained to the victim shard "
            "with correct answers throughout."
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="injection seed (default: 0)"
    )
    parser.add_argument(
        "--bench-dir",
        default=None,
        help="run-record directory (default: benchmarks/results)",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        help="also write the full report as JSON to this path",
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip writing the BENCH_chaos_shard.json run record",
    )
    args = parser.parse_args(argv)

    with obs.profiled() as session:
        report = run_shard_chaos(seed=args.seed)
    print(report.render())

    if not args.no_record:
        record = obs.run_record(
            "chaos_shard",
            metrics=session.snapshot(),
            wall_seconds=session.wall_seconds,
            status="ok" if report.passed else "silent-failures",
            extra={"chaos_shard": report.to_dict()},
        )
        path = obs.write_run_record(record, args.bench_dir)
        print(f"run record: {path}")
    if args.json_out:
        from repro.formats.io import atomic_write_text

        atomic_write_text(
            args.json_out,
            json.dumps(report.to_dict(), indent=1) + "\n",
            encoding="utf-8",
        )
        print(f"report: {args.json_out}")
    return 0 if report.passed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
