"""Invariant oracles and the self-checking executor front end.

Two oracles back every resilience claim:

* :func:`check_schedule` — proves a merge-path schedule covers every
  non-zero exactly once and that its partial-row atomic accounting
  balances (the paper's bit-identical-aggregation precondition).
* :func:`check_output` — cross-checks an executor's output against an
  independent reference (SciPy's CSR SpMM when available, otherwise the
  chunked dense reference) within tolerance, and rejects non-finite
  outputs outright.

:func:`verified_spmm` composes them into a self-checking executor with
graceful degradation: it runs MergePath-SpMM, applies both oracles, and
on any detected corruption falls back to the serial reference executor
(:meth:`CSRMatrix.multiply_dense`), recording the detection and recovery
on the obs counters and the active fault plan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.formats import CSRMatrix
from repro.resilience import faults


class OracleError(RuntimeError):
    """An invariant oracle found evidence of corruption."""


class ScheduleOracleError(OracleError):
    """A merge-path schedule violates its coverage/accounting invariants."""


class OutputOracleError(OracleError):
    """An executor's output disagrees with the independent reference."""


def reference_spmm(matrix: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    """Independent reference product for the output oracle.

    Uses SciPy's CSR multiply when installed (an implementation sharing
    no code with this repository); falls back to the chunked dense
    reference otherwise.  Both sum duplicate indices, matching the
    executors' semantics.
    """
    dense = np.asarray(dense, dtype=np.float64)
    try:
        import scipy.sparse as sp
    except ImportError:  # pragma: no cover - scipy is in the dev extras
        return matrix.multiply_dense(dense)
    csr = sp.csr_matrix(
        (matrix.values, matrix.column_indices, matrix.row_pointers),
        shape=matrix.shape,
    )
    return np.asarray(csr @ dense, dtype=np.float64).reshape(
        matrix.n_rows, dense.shape[1]
    )


def check_schedule(schedule) -> None:
    """Prove a schedule's coverage and atomic accounting; raise on failure.

    Checked invariants:

    * the schedule's non-empty write segments tile ``[0, nnz)`` exactly —
      every non-zero is accumulated exactly once;
    * atomic/regular write and nnz accounting matches the schedule's
      :class:`~repro.core.schedule.ScheduleStatistics` and sums to the
      matrix totals (the partial-row atomic balance);
    * regular (complete-row) writes target distinct rows, disjoint from
      every atomically-updated row;
    * the structural tiling invariants of
      :meth:`MergePathSchedule.validate`.

    Raises:
        ScheduleOracleError: Naming the violated invariant.
    """
    from repro.core.spmm import write_segments

    obs.counter("resilience.oracle.checks", oracle="schedule").inc()
    matrix = schedule.matrix
    segments = write_segments(schedule)

    nz = segments.lengths > 0
    starts = segments.starts[nz]
    lengths = segments.lengths[nz]
    order = np.argsort(starts, kind="stable")
    starts, lengths = starts[order], lengths[order]
    expected = (
        np.concatenate(([0], np.cumsum(lengths)[:-1]))
        if len(lengths)
        else lengths
    )
    if int(lengths.sum()) != matrix.nnz or not np.array_equal(starts, expected):
        faults.detected_externally("schedule-coverage")
        raise ScheduleOracleError(
            "write segments do not tile [0, nnz) exactly once: "
            f"covered {int(lengths.sum())} of {matrix.nnz} non-zeros"
        )

    stats = schedule.statistics
    atomic = segments.atomic
    seg_atomic_writes = int(atomic.sum())
    seg_atomic_nnz = int(segments.lengths[atomic].sum())
    seg_regular_nnz = int(segments.lengths[~atomic].sum())
    if (
        seg_atomic_writes != stats.atomic_writes
        or seg_atomic_nnz != stats.atomic_nnz
        or seg_regular_nnz != stats.regular_nnz
        or stats.atomic_nnz + stats.regular_nnz != matrix.nnz
    ):
        faults.detected_externally("schedule-accounting")
        raise ScheduleOracleError(
            "atomic accounting does not balance: segments say "
            f"({seg_atomic_writes} writes, {seg_atomic_nnz}+{seg_regular_nnz} nnz), "
            f"statistics say ({stats.atomic_writes} writes, "
            f"{stats.atomic_nnz}+{stats.regular_nnz} nnz) for nnz={matrix.nnz}"
        )

    regular_rows = segments.rows[~atomic]
    atomic_rows = np.unique(segments.rows[atomic])
    if len(np.unique(regular_rows)) != len(regular_rows):
        faults.detected_externally("schedule-row-ownership")
        raise ScheduleOracleError("a row is written regularly more than once")
    if np.intersect1d(regular_rows, atomic_rows).size:
        faults.detected_externally("schedule-row-ownership")
        raise ScheduleOracleError(
            "a row is written both regularly and atomically"
        )

    try:
        schedule.validate()
    except AssertionError as exc:
        faults.detected_externally("schedule-tiling")
        raise ScheduleOracleError(f"tiling invariant violated: {exc}") from exc


def check_output(
    matrix: CSRMatrix,
    dense: np.ndarray,
    output: np.ndarray,
    *,
    rtol: float = 1e-9,
    atol: float = 1e-9,
    reference: "np.ndarray | None" = None,
) -> None:
    """Cross-check an SpMM output against the independent reference.

    Args:
        matrix: The sparse input the output claims to be a product of.
        dense: The dense operand.
        output: The executor's result.
        rtol, atol: Agreement tolerances.
        reference: Precomputed reference product (recomputed when
            omitted).

    Raises:
        OutputOracleError: On shape mismatch, non-finite entries, or
            disagreement beyond tolerance.
    """
    obs.counter("resilience.oracle.checks", oracle="output").inc()
    dense = np.asarray(dense, dtype=np.float64)
    expected_shape = (matrix.n_rows, dense.shape[1])
    if output.shape != expected_shape:
        faults.detected_externally("output-shape")
        raise OutputOracleError(
            f"output shape {output.shape} != expected {expected_shape}"
        )
    if output.size and not np.isfinite(output).all():
        faults.detected_externally("output-nonfinite")
        bad = int(np.count_nonzero(~np.isfinite(output)))
        raise OutputOracleError(f"output contains {bad} non-finite entries")
    if reference is None:
        reference = reference_spmm(matrix, dense)
    if not np.allclose(output, reference, rtol=rtol, atol=atol):
        faults.detected_externally("output-mismatch")
        diff = np.abs(output - reference)
        worst = float(np.nanmax(diff)) if diff.size else 0.0
        raise OutputOracleError(
            f"output disagrees with reference (max |diff| = {worst:.3e}, "
            f"rtol={rtol}, atol={atol})"
        )


@dataclass(frozen=True)
class ResilientResult:
    """Outcome of a self-checked SpMM invocation.

    Attributes:
        output: The verified product (merge-path's, or the fallback's).
        result: The merge-path :class:`~repro.core.spmm.SpMMResult` when
            it passed both oracles, else ``None``.
        fallback_used: Whether the serial reference executor produced the
            returned output.
        detected: Description of the detected corruption (``None`` when
            the merge-path result was accepted).
    """

    output: np.ndarray
    result: "object | None"
    fallback_used: bool
    detected: "str | None"


def verified_spmm(
    matrix: CSRMatrix,
    dense: np.ndarray,
    *,
    fallback: bool = True,
    rtol: float = 1e-9,
    atol: float = 1e-9,
    **spmm_kwargs,
) -> ResilientResult:
    """MergePath-SpMM with oracle checking and serial fallback.

    Runs :func:`~repro.core.spmm.merge_path_spmm`, then both oracles.  On
    a detected corruption (or an executor self-check failure) it degrades
    gracefully: the serial reference executor recomputes the product, the
    recovery is counted, and the verified fallback output is returned.

    Args:
        matrix: Sparse input.
        dense: Dense operand.
        fallback: When ``False``, detected corruption re-raises instead
            of degrading.
        rtol, atol: Output oracle tolerances.
        **spmm_kwargs: Forwarded to :func:`merge_path_spmm`
            (``cost``, ``n_threads``, ``executor``, ...).

    Returns:
        A :class:`ResilientResult`.

    Raises:
        OracleError: When corruption is detected and ``fallback`` is off,
            or when even the serial reference output fails verification
            (the input itself is corrupt — nothing to degrade to).
    """
    from repro.core.spmm import merge_path_spmm

    dense = np.asarray(dense, dtype=np.float64)
    detected: "str | None" = None
    try:
        result = merge_path_spmm(matrix, dense, **spmm_kwargs)
        check_schedule(result.schedule)
        check_output(matrix, dense, result.output, rtol=rtol, atol=atol)
        return ResilientResult(
            output=result.output, result=result, fallback_used=False,
            detected=None,
        )
    except (OracleError, faults.ExecutionFaultError) as exc:
        detected = f"{type(exc).__name__}: {exc}"
        obs.counter("resilience.executor.detections").inc()
        if not fallback:
            raise
    # Graceful degradation: serial reference executor, itself verified.
    output = matrix.multiply_dense(dense)
    if output.size and not np.isfinite(output).all():
        obs.counter("resilience.executor.unrecoverable").inc()
        raise OutputOracleError(
            "serial fallback also produced non-finite output — the input "
            f"matrix is corrupt (after: {detected})"
        )
    obs.counter("resilience.executor.fallbacks").inc()
    plan = faults.active_plan()
    if plan is not None:
        plan.note_recovered("fallback")
    return ResilientResult(
        output=output, result=None, fallback_used=True, detected=detected
    )
