"""The *live-update* chaos matrix behind ``python -m repro chaos-update``.

:mod:`repro.resilience.chaos_serve` injects faults into a static-graph
service; this matrix attacks the **mutation path** added for live
graphs: a :class:`~repro.graphs.delta.DeltaCSR` behind a
:class:`~repro.serve.epoch.GraphEpochManager`, with every cache in the
stack keyed on version-precise fingerprints.  The stack's one
consistency rule — *a request executes against the epoch it admitted
under, end to end* — is exactly the kind of invariant that only breaks
under races, so every scenario here runs updates concurrently with the
thing they can tear:

* **updates mid-batch**: a Poisson request stream races a Poisson
  update stream; every accepted response is cross-checked against a
  scipy reference pinned to the *response's admitted epoch* (not the
  current graph).  One mismatch is a silent failure.
* **updates mid-compile**: an update lands while the plan cache is
  compiling the admitted epoch's plan, proving the lock ordering
  (service condition → epoch manager → caches) can neither deadlock
  nor tear a plan, and that the in-flight lease blocks retirement of
  the epoch being compiled.
* **updates mid-eviction**: a capacity-2 plan cache churns evictions
  while epochs rotate and bystander graphs hammer the same cache —
  stale reuse across epochs or cross-matrix value aliasing would
  surface as an oracle mismatch.
* **precise invalidation**: after an epoch retires, caches must retain
  every live-epoch entry (including the shared repair base) and drop
  exactly the retired epoch's keys — asserted via cache stats, never a
  global flush.
* **epoch-lag / compaction-backlog health**: held leases and a filling
  delta log must surface as ``DEGRADED`` health causes and clear once
  the lease drains and compaction lands.

Exit status 0 requires zero silent cases *and* the demonstrations the
machinery exists for: at least two distinct epochs served, one epoch
retirement, one compaction, and one incremental plan repair.  The run
writes a ``BENCH_chaos_update.json`` run record.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.formats import CSRMatrix
from repro.graphs.delta import DeltaCSR, UpdatePlanner
from repro.graphs.generators import power_law_graph
from repro.resilience.chaos import (
    DETECTED,
    OK,
    RECOVERED,
    SILENT,
    ChaosCase,
)
from repro.resilience.oracles import reference_spmm
from repro.serve.dispatch import AdaptiveDispatcher, Backend
from repro.serve.epoch import GraphEpochManager
from repro.serve.health import DEGRADED, HEALTHY
from repro.serve.plancache import PlanCache
from repro.serve.service import InferenceService, ServeConfig

_DIM = 8
_KIND = "live-update"


@dataclass
class UpdateChaosReport:
    """Aggregate result of one update-race injection run."""

    seed: int
    cases: "list[ChaosCase]" = field(default_factory=list)
    epochs_served: "set[int]" = field(default_factory=set)
    retired_epochs: int = 0
    compactions: int = 0
    plan_repairs: int = 0
    invalidated_keys: int = 0
    verified_responses: int = 0
    update_batches: int = 0
    updates_applied: int = 0

    @property
    def silent(self) -> "list[ChaosCase]":
        return [c for c in self.cases if not c.caught]

    @property
    def coverage(self) -> float:
        if not self.cases:
            return 1.0
        return (len(self.cases) - len(self.silent)) / len(self.cases)

    @property
    def passed(self) -> bool:
        """Zero silent cases *and* the live-update machinery exercised."""
        return (
            not self.silent
            and len(self.epochs_served) >= 2
            and self.retired_epochs >= 1
            and self.compactions >= 1
            and self.plan_repairs >= 1
            and self.verified_responses >= 1
        )

    def to_dict(self) -> dict:
        outcomes: "dict[str, int]" = {}
        for case in self.cases:
            outcomes[case.outcome] = outcomes.get(case.outcome, 0) + 1
        return {
            "seed": self.seed,
            "n_cases": len(self.cases),
            "coverage": self.coverage,
            "passed": self.passed,
            "outcomes": outcomes,
            "demonstrations": {
                "epochs_served": sorted(self.epochs_served),
                "distinct_epochs": len(self.epochs_served),
                "retired_epochs": self.retired_epochs,
                "compactions": self.compactions,
                "plan_repairs": self.plan_repairs,
                "invalidated_keys": self.invalidated_keys,
                "verified_responses": self.verified_responses,
                "update_batches": self.update_batches,
                "updates_applied": self.updates_applied,
            },
            "cases": [c.to_dict() for c in self.cases],
        }

    def render(self) -> str:
        lines = [
            f"live-update chaos matrix (seed={self.seed}): "
            f"{len(self.cases)} cases"
        ]
        width = max(len(c.name) for c in self.cases) if self.cases else 0
        for case in self.cases:
            lines.append(
                f"  {case.name:<{width}}  [{case.expected_layer:<10}] "
                f"-> {case.outcome}"
                + (f"  ({case.detail})" if case.detail and not case.caught else "")
            )
        lines.append(
            f"detection coverage: {self.coverage:.0%} "
            f"({len(self.cases) - len(self.silent)}/{len(self.cases)} caught)"
        )
        lines.append(
            f"demonstrated: {len(self.epochs_served)} distinct epoch(s) "
            f"served, {self.retired_epochs} retirement(s), "
            f"{self.compactions} compaction(s), {self.plan_repairs} plan "
            f"repair(s), {self.invalidated_keys} key(s) precisely "
            f"invalidated, {self.verified_responses} responses verified "
            f"against their admitted epoch"
        )
        if self.silent:
            lines.append(
                "SILENT failures: " + ", ".join(c.name for c in self.silent)
            )
        return "\n".join(lines)


class _PlanBackend:
    """A backend that exercises the plan cache (and can be slowed)."""

    def __init__(self, delay: float = 0.0) -> None:
        self.delay = delay
        self.calls = 0

    def run(self, matrix, dense, plans, plan_dim):
        self.calls += 1
        if self.delay:
            time.sleep(self.delay)
        return plans.get(matrix, dim=plan_dim).execute(dense)


class _MidCompileCache(PlanCache):
    """PlanCache whose first compile fires an injection hook mid-build."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.on_build = None
        self.hook_fired = 0

    def _build(self, matrix, cost, min_threads):
        hook, self.on_build = self.on_build, None
        if hook is not None:
            self.hook_fired += 1
            hook()
        return super()._build(matrix, cost, min_threads)


def _base_matrix(seed: int) -> CSRMatrix:
    return power_law_graph(n_nodes=60, nnz=360, max_degree=16, seed=seed)


def _wait_for(predicate, timeout: float = 5.0, interval: float = 0.01) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _verify_epoch_pinned(
    report: UpdateChaosReport,
    oracle: "dict[int, CSRMatrix]",
    entries,
    name: str,
) -> "list[str]":
    """Check every accepted response against its *admitted epoch's* oracle."""
    problems = []
    for dense, future in entries:
        response = future.result(timeout=30.0)
        if not response.ok:
            continue
        if response.epoch is None:
            problems.append(
                f"{name}: accepted response {response.request_id} carries "
                "no admitted epoch"
            )
            continue
        pinned = oracle.get(response.epoch)
        if pinned is None:
            problems.append(
                f"{name}: response {response.request_id} admitted under "
                f"unknown epoch {response.epoch}"
            )
            continue
        report.verified_responses += 1
        report.epochs_served.add(response.epoch)
        if not np.allclose(
            response.output, reference_spmm(pinned, dense),
            rtol=1e-9, atol=1e-9,
        ):
            problems.append(
                f"{name}: response {response.request_id} disagrees with "
                f"its admitted epoch {response.epoch}'s reference"
            )
    return problems


def _run_update_stream_scenario(
    report: UpdateChaosReport,
    seed: int,
    rng: np.random.Generator,
    rate: float,
    update_rate: float,
) -> None:
    """Poisson requests race a Poisson update stream, mid-batch included.

    The backend sleeps a few milliseconds per call, so update batches
    land while requests are queued, batched, and mid-execution; leases
    must pin each request to its admitted epoch regardless.
    """
    base = _base_matrix(seed)
    plans = PlanCache(capacity=32)
    manager = GraphEpochManager(
        DeltaCSR(base, compact_threshold=12), caches=(plans,)
    )
    backend = _PlanBackend(delay=0.003)
    dispatcher = AdaptiveDispatcher(
        [Backend("planned", backend.run)], plan_cache=plans, epsilon=0.0
    )
    config = ServeConfig(max_queue=256, max_batch=4, max_wait_ms=1.0, n_workers=2)
    oracle: "dict[int, CSRMatrix]" = {}
    planner = UpdatePlanner(base)
    problems: "list[str]" = []
    with InferenceService(dispatcher, config, epoch_manager=manager) as service:
        snapshot = manager.current_snapshot()
        oracle[snapshot.epoch] = snapshot.matrix
        stop = threading.Event()
        update_errors: "list[str]" = []

        def updater() -> None:
            urng = np.random.default_rng(seed + 101)
            while not stop.is_set():
                batch = planner.batch(urng, int(urng.integers(1, 3)))
                try:
                    snap = service.apply_updates(batch)
                except Exception as exc:  # any tear here is a finding
                    update_errors.append(f"{type(exc).__name__}: {exc}")
                    return
                oracle[snap.epoch] = snap.matrix
                report.update_batches += 1
                report.updates_applied += len(batch)
                time.sleep(urng.exponential(1.0 / update_rate))

        thread = threading.Thread(target=updater, name="chaos-updater")
        thread.start()
        entries = []
        try:
            for _ in range(40):
                dense = rng.random((base.n_cols, _DIM))
                entries.append((dense, service.submit(None, dense)))
                time.sleep(rng.exponential(1.0 / rate))
            # Let the tail of the batch queue drain under live updates.
            for _, future in entries:
                future.result(timeout=30.0)
        finally:
            stop.set()
            thread.join(timeout=10.0)
        if thread.is_alive():
            problems.append("update stream failed to stop (possible deadlock)")
        problems += update_errors
        problems += _verify_epoch_pinned(
            report, oracle, entries, "update-stream"
        )
        stats = manager.stats()
        report.retired_epochs += stats["retired_epochs"]
        report.compactions += stats["compactions"]
        cache_stats = plans.stats()
        report.plan_repairs += cache_stats.repairs
        report.invalidated_keys += cache_stats.invalidations
        if len({r.epoch for _, f in entries if (r := f.result(30.0)).ok}) < 2:
            problems.append(
                "update stream never served two distinct epochs — the race "
                "was not exercised"
            )
    if problems:
        report.cases.append(
            ChaosCase(
                "update-stream/epoch-pinned-responses", _KIND, "oracle",
                SILENT, "; ".join(problems),
            )
        )
    else:
        report.cases.append(
            ChaosCase(
                "update-stream/epoch-pinned-responses", _KIND, "oracle", OK,
                f"{report.update_batches} update batch(es) raced "
                f"{len(entries)} requests across "
                f"{len(report.epochs_served)} epoch(s); every accepted "
                "response matched its admitted epoch's reference",
            )
        )


def _run_mid_compile_scenario(
    report: UpdateChaosReport, seed: int, rng: np.random.Generator
) -> None:
    """An update lands while the admitted epoch's plan is compiling."""
    base = _base_matrix(seed + 1)
    plans = _MidCompileCache(capacity=16)
    manager = GraphEpochManager(
        DeltaCSR(base, compact_threshold=64), caches=(plans,)
    )
    backend = _PlanBackend()
    dispatcher = AdaptiveDispatcher(
        [Backend("planned", backend.run)], plan_cache=plans, epsilon=0.0
    )
    config = ServeConfig(max_queue=16, max_batch=1, max_wait_ms=0.0, n_workers=1)
    planner = UpdatePlanner(base)
    problems: "list[str]" = []
    with InferenceService(dispatcher, config, epoch_manager=manager) as service:
        snapshot0 = manager.current_snapshot()
        oracle: "dict[int, CSRMatrix]" = {snapshot0.epoch: snapshot0.matrix}
        fire = threading.Event()
        update_done = threading.Event()
        update_errors: "list[str]" = []

        def updater() -> None:
            fire.wait(timeout=10.0)
            try:
                snap = service.apply_updates(planner.batch(
                    np.random.default_rng(seed + 202), 2
                ))
                oracle[snap.epoch] = snap.matrix
                report.update_batches += 1
                report.updates_applied += 2
            except Exception as exc:
                update_errors.append(f"{type(exc).__name__}: {exc}")
            finally:
                update_done.set()

        def hook() -> None:
            # Runs under the cache lock, mid-compile: release the update
            # and give it time to get in flight.  It must block (or
            # complete harmlessly) — never deadlock or tear the build.
            fire.set()
            time.sleep(0.05)

        plans.on_build = hook
        thread = threading.Thread(target=updater, name="mid-compile-updater")
        thread.start()
        dense = rng.random((base.n_cols, _DIM))
        response = service.submit(None, dense).result(timeout=30.0)
        if not update_done.wait(timeout=10.0):
            problems.append(
                "update blocked past compile completion (possible deadlock)"
            )
        thread.join(timeout=10.0)
        problems += update_errors
        if plans.hook_fired != 1:
            problems.append("injection hook never fired during a compile")
        if not response.ok:
            problems.append(f"request failed: {response.error}")
        elif response.epoch != snapshot0.epoch:
            problems.append(
                f"request admitted at epoch {snapshot0.epoch} resolved "
                f"under epoch {response.epoch}"
            )
        elif not np.allclose(
            response.output, reference_spmm(snapshot0.matrix, dense),
            rtol=1e-9, atol=1e-9,
        ):
            problems.append(
                "output compiled mid-update disagrees with the admitted "
                "epoch's reference"
            )
        else:
            report.verified_responses += 1
            report.epochs_served.add(response.epoch)
        # The next request admits under the new epoch and must be served
        # by *repairing* the just-compiled base plan, not a recompile.
        dense2 = rng.random((base.n_cols, _DIM))
        entries = [(dense2, service.submit(None, dense2))]
        problems += _verify_epoch_pinned(report, oracle, entries, "mid-compile")
        cache_stats = plans.stats()
        if cache_stats.repairs < 1:
            problems.append(
                "post-update request did not repair the cached base plan "
                f"(repairs={cache_stats.repairs})"
            )
        report.plan_repairs += cache_stats.repairs
        report.invalidated_keys += cache_stats.invalidations
        report.retired_epochs += manager.stats()["retired_epochs"]
    if problems:
        report.cases.append(
            ChaosCase(
                "update-mid-compile/no-deadlock-no-tear", _KIND, "plancache",
                SILENT, "; ".join(problems),
            )
        )
    else:
        report.cases.append(
            ChaosCase(
                "update-mid-compile/no-deadlock-no-tear", _KIND, "plancache",
                DETECTED,
                "update landed mid-compile; compiled output matched the "
                "admitted epoch and the follow-up was served by repair",
            )
        )


def _run_mid_eviction_scenario(
    report: UpdateChaosReport, seed: int, rng: np.random.Generator
) -> None:
    """Epoch churn through a capacity-2 cache racing bystander lookups."""
    base = _base_matrix(seed + 2)
    plans = PlanCache(capacity=2)
    manager = GraphEpochManager(
        DeltaCSR(base, compact_threshold=64), caches=(plans,)
    )
    backend = _PlanBackend()
    dispatcher = AdaptiveDispatcher(
        [Backend("planned", backend.run)], plan_cache=plans, epsilon=0.0
    )
    config = ServeConfig(max_queue=64, max_batch=1, max_wait_ms=0.0, n_workers=1)
    bystanders = [_base_matrix(seed + 3), _base_matrix(seed + 4)]
    planner = UpdatePlanner(base)
    problems: "list[str]" = []
    oracle: "dict[int, CSRMatrix]" = {}
    with InferenceService(dispatcher, config, epoch_manager=manager) as service:
        snapshot = manager.current_snapshot()
        oracle[snapshot.epoch] = snapshot.matrix
        stop = threading.Event()
        bystander_errors: "list[str]" = []

        def hammer() -> None:
            brng = np.random.default_rng(seed + 303)
            while not stop.is_set():
                matrix = bystanders[int(brng.integers(0, len(bystanders)))]
                dense = brng.random((matrix.n_cols, _DIM))
                try:
                    output = plans.get(matrix, dim=_DIM).execute(dense)
                except Exception as exc:
                    bystander_errors.append(f"{type(exc).__name__}: {exc}")
                    return
                if not np.allclose(
                    output, reference_spmm(matrix, dense),
                    rtol=1e-9, atol=1e-9,
                ):
                    bystander_errors.append(
                        "bystander plan executed with another matrix's "
                        "values (cross-matrix aliasing)"
                    )
                    return

        thread = threading.Thread(target=hammer, name="eviction-hammer")
        thread.start()
        entries = []
        try:
            urng = np.random.default_rng(seed + 404)
            for _ in range(12):
                snap = service.apply_updates(planner.batch(urng, 1))
                oracle[snap.epoch] = snap.matrix
                report.update_batches += 1
                report.updates_applied += 1
                dense = rng.random((base.n_cols, _DIM))
                entries.append((dense, service.submit(None, dense)))
            for _, future in entries:
                future.result(timeout=30.0)
        finally:
            stop.set()
            thread.join(timeout=10.0)
        problems += bystander_errors
        problems += _verify_epoch_pinned(report, oracle, entries, "eviction")
        cache_stats = plans.stats()
        if cache_stats.evictions < 1:
            problems.append(
                "capacity-2 cache never evicted under epoch churn"
            )
        if len(plans) > plans.capacity:
            problems.append(
                f"cache holds {len(plans)} entries over capacity "
                f"{plans.capacity}"
            )
        report.plan_repairs += cache_stats.repairs
        report.invalidated_keys += cache_stats.invalidations
        report.retired_epochs += manager.stats()["retired_epochs"]
    if problems:
        report.cases.append(
            ChaosCase(
                "update-mid-eviction/no-stale-reuse", _KIND, "plancache",
                SILENT, "; ".join(problems),
            )
        )
    else:
        report.cases.append(
            ChaosCase(
                "update-mid-eviction/no-stale-reuse", _KIND, "plancache",
                DETECTED,
                f"{plans.stats().evictions} eviction(s) under epoch churn "
                "with bystander lookups; no stale or aliased plan served",
            )
        )


def _run_precise_invalidation_scenario(
    report: UpdateChaosReport, seed: int, rng: np.random.Generator
) -> None:
    """Retirement drops exactly the retired epoch's keys — no global flush."""
    base = _base_matrix(seed + 5)
    bystander = _base_matrix(seed + 6)
    plans = PlanCache(capacity=16)
    manager = GraphEpochManager(
        DeltaCSR(base, compact_threshold=3), caches=(plans,)
    )
    problems: "list[str]" = []
    plans.get(bystander, dim=_DIM)
    snapshot0 = manager.current_snapshot()
    plans.get(snapshot0.matrix, dim=_DIM)

    lease = manager.acquire()  # an in-flight request pins epoch 0
    planner = UpdatePlanner(base)
    urng = np.random.default_rng(seed + 505)
    snapshot1 = manager.apply_updates(planner.batch(urng, 1))
    report.update_batches += 1
    report.updates_applied += 1
    plans.get(snapshot1.matrix, dim=_DIM)

    fingerprints = plans.fingerprints()
    if snapshot0.fingerprint not in fingerprints:
        problems.append("leased epoch's plan was dropped while in flight")
    stats_before = plans.stats()

    lease.release()  # drains the last lease -> epoch 0 retires
    fingerprints = plans.fingerprints()
    # Epoch 0's matrix doubles as epoch 1's repair base, so its plan
    # must *survive* this retirement (shared-fingerprint refcount).
    if snapshot1.base_fingerprint == snapshot0.fingerprint:
        if snapshot0.fingerprint not in fingerprints:
            problems.append(
                "shared repair base was invalidated while epoch 1 leans "
                "on it"
            )
    if snapshot1.fingerprint not in fingerprints:
        problems.append("live epoch's plan was dropped at retirement")
    if bystander.fingerprint() not in fingerprints:
        problems.append("bystander plan was flushed by epoch retirement")

    # Crossing the compaction threshold rebases the delta: the old base
    # is no longer referenced by any live epoch and must drop precisely.
    snapshot2 = manager.apply_updates(planner.batch(urng, 2))
    report.update_batches += 1
    report.updates_applied += 2
    if not snapshot2.compacted:
        problems.append(
            f"expected the threshold-3 log to compact (log was "
            f"{snapshot2.log_size})"
        )
    fingerprints = plans.fingerprints()
    for name, fingerprint in (
        ("epoch 0", snapshot0.fingerprint),
        ("epoch 1", snapshot1.fingerprint),
    ):
        if fingerprint in fingerprints:
            problems.append(f"{name}'s plan survived full retirement")
    if bystander.fingerprint() not in fingerprints:
        problems.append("bystander plan was flushed by compaction retirement")
    stats_after = plans.stats()
    dropped = stats_after.invalidations - stats_before.invalidations
    if dropped < 2:
        problems.append(
            f"expected >= 2 precisely invalidated plans, stats report "
            f"{dropped}"
        )
    hits_before = plans.stats().hits
    plans.get(bystander, dim=_DIM)
    if plans.stats().hits != hits_before + 1:
        problems.append("bystander lookup missed after retirement (flush?)")
    manager_stats = manager.stats()
    report.retired_epochs += manager_stats["retired_epochs"]
    report.compactions += manager_stats["compactions"]
    report.invalidated_keys += stats_after.invalidations
    report.plan_repairs += stats_after.repairs
    if problems:
        report.cases.append(
            ChaosCase(
                "retirement/precise-invalidation", _KIND, "epoch", SILENT,
                "; ".join(problems),
            )
        )
    else:
        report.cases.append(
            ChaosCase(
                "retirement/precise-invalidation", _KIND, "epoch", DETECTED,
                f"{dropped} retired-epoch plan(s) dropped; bystander and "
                "live-epoch entries (incl. the shared repair base) retained",
            )
        )


def _run_health_scenario(
    report: UpdateChaosReport, seed: int, rng: np.random.Generator
) -> None:
    """Held leases and a filling log surface as DEGRADED, then clear."""
    base = _base_matrix(seed + 7)
    plans = PlanCache(capacity=16)
    manager = GraphEpochManager(
        DeltaCSR(base, compact_threshold=10), caches=(plans,)
    )
    backend = _PlanBackend()
    dispatcher = AdaptiveDispatcher(
        [Backend("planned", backend.run)], plan_cache=plans, epsilon=0.0
    )
    config = ServeConfig(max_queue=16, max_batch=1, max_wait_ms=0.0, n_workers=1)
    planner = UpdatePlanner(base)
    problems: "list[str]" = []
    with InferenceService(dispatcher, config, epoch_manager=manager) as service:
        lease = manager.acquire()  # a stuck consumer pins epoch 0
        urng = np.random.default_rng(seed + 606)
        for _ in range(4):  # default epoch_lag_degraded = 4
            service.apply_updates(planner.batch(urng, 1))
            report.update_batches += 1
            report.updates_applied += 1
        health = service.health()
        causes = {c.kind for c in health.causes}
        if health.status != DEGRADED or "epoch-lag-high" not in causes:
            problems.append(
                f"4-epoch lag reported {health.status} with causes "
                f"{sorted(causes)}"
            )
        for _ in range(5):  # log 4 -> 9 = 90% of threshold 10
            service.apply_updates(planner.batch(urng, 1))
            report.update_batches += 1
            report.updates_applied += 1
        health = service.health()
        causes = {c.kind for c in health.causes}
        if "compaction-backlog" not in causes:
            problems.append(
                f"90%-full delta log not reported (causes {sorted(causes)})"
            )
        lease.release()
        # The next update crosses the threshold: snapshot compacts, the
        # drained lag retires, and health must return to HEALTHY.
        service.apply_updates(planner.batch(urng, 1))
        report.update_batches += 1
        report.updates_applied += 1
        health = service.health()
        if health.status != HEALTHY:
            problems.append(
                f"after lease drain + compaction health is {health.status} "
                f"({[c.kind for c in health.causes]})"
            )
        dense = rng.random((base.n_cols, _DIM))
        snap = manager.current_snapshot()
        response = service.submit(None, dense).result(timeout=30.0)
        if not response.ok or not np.allclose(
            response.output, reference_spmm(snap.matrix, dense),
            rtol=1e-9, atol=1e-9,
        ):
            problems.append("post-compaction response wrong or failed")
        else:
            report.verified_responses += 1
            report.epochs_served.add(response.epoch)
        manager_stats = manager.stats()
        report.retired_epochs += manager_stats["retired_epochs"]
        report.compactions += manager_stats["compactions"]
        report.invalidated_keys += plans.stats().invalidations
    if problems:
        report.cases.append(
            ChaosCase(
                "health/epoch-lag-and-backlog", _KIND, "health", SILENT,
                "; ".join(problems),
            )
        )
    else:
        report.cases.append(
            ChaosCase(
                "health/epoch-lag-and-backlog", _KIND, "health", RECOVERED,
                "lag and backlog degraded health, then cleared after the "
                "lease drained and compaction landed",
            )
        )


def run_update_chaos(
    seed: int = 0, rate: float = 200.0, update_rate: float = 80.0
) -> UpdateChaosReport:
    """Run every update-race chaos scenario with a deterministic seed."""
    report = UpdateChaosReport(seed=seed)
    rng = np.random.default_rng(seed)
    with obs.span("resilience.chaos_update.run", seed=seed):
        _run_update_stream_scenario(report, seed, rng, rate, update_rate)
        _run_mid_compile_scenario(report, seed, rng)
        _run_mid_eviction_scenario(report, seed, rng)
        _run_precise_invalidation_scenario(report, seed, rng)
        _run_health_scenario(report, seed, rng)
    obs.counter("resilience.chaos_update.runs").inc()
    obs.gauge("resilience.chaos_update.coverage").set(report.coverage)
    obs.counter("resilience.chaos_update.silent_cases").inc(len(report.silent))
    if report.silent:
        obs.instant(
            "resilience.chaos_update.silent",
            category="error",
            cases=[c.name for c in report.silent],
        )
    return report


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point for ``python -m repro chaos-update``."""
    parser = argparse.ArgumentParser(
        prog="repro chaos-update",
        description=(
            "Race live graph updates against a serving stack under "
            "Poisson load — mid-batch, mid-compile, and mid-eviction — "
            "verifying every response against its admitted epoch and "
            "that caches invalidate exactly the retired epochs' keys."
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="injection seed (default: 0)"
    )
    parser.add_argument(
        "--rate", type=float, default=200.0,
        help="Poisson request rate in requests/second (default: 200)",
    )
    parser.add_argument(
        "--update-rate", type=float, default=80.0,
        help="Poisson update-batch rate in batches/second (default: 80)",
    )
    parser.add_argument(
        "--bench-dir",
        default=None,
        help="run-record directory (default: benchmarks/results)",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        help="also write the full report as JSON to this path",
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip writing the BENCH_chaos_update.json run record",
    )
    args = parser.parse_args(argv)

    with obs.profiled() as session:
        report = run_update_chaos(
            seed=args.seed, rate=args.rate, update_rate=args.update_rate
        )
    print(report.render())

    if not args.no_record:
        record = obs.run_record(
            "chaos_update",
            metrics=session.snapshot(),
            wall_seconds=session.wall_seconds,
            status="ok" if report.passed else "silent-failures",
            extra={"chaos_update": report.to_dict()},
        )
        path = obs.write_run_record(record, args.bench_dir)
        print(f"run record: {path}")
    if args.json_out:
        from repro.formats.io import atomic_write_text

        atomic_write_text(
            args.json_out,
            json.dumps(report.to_dict(), indent=1) + "\n",
            encoding="utf-8",
        )
        print(f"report: {args.json_out}")
    return 0 if report.passed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
