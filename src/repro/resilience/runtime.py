"""Timeouts and bounded retries for the experiment harness.

Pure-Python building blocks with injectable clocks so tests run in
milliseconds:

* :func:`call_with_timeout` — run a callable with a wall-clock budget,
  raising :class:`ExperimentTimeoutError` when it is exhausted; workers
  run as daemon threads (an abandoned worker can never block interpreter
  shutdown) and stay visible through the
  ``resilience.harness.abandoned_workers`` gauge;
* :func:`retry_with_backoff` — bounded retry with exponential backoff
  and optional deterministic jitter.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, TypeVar

from repro import obs

T = TypeVar("T")


class ExperimentTimeoutError(TimeoutError):
    """A harness-managed call exceeded its wall-clock budget."""


def call_with_timeout(
    fn: Callable[[], T], timeout: "float | None"
) -> T:
    """Call ``fn()`` with a wall-clock timeout.

    The call runs in a *daemon* worker thread; on timeout the caller
    gets :class:`ExperimentTimeoutError` immediately.  Python threads
    cannot be killed, so the abandoned worker may keep running in the
    background until its current experiment finishes — the harness
    records the timeout and moves on, which is the graceful-degradation
    contract — but being a daemon it can never block interpreter
    shutdown (non-daemon threads are joined at exit, so a wedged worker
    used to hang the whole process on the way out).  Every abandonment
    increments the ``resilience.harness.abandoned_workers`` gauge, and
    the gauge drops back when the abandoned call eventually finishes, so
    a leak of stuck workers is visible in ``obs-report`` instead of
    silent.

    Args:
        fn: Zero-argument callable.
        timeout: Budget in seconds; ``None`` calls ``fn`` directly.
    """
    if timeout is None:
        return fn()
    if timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    state_lock = threading.Lock()
    state = {"abandoned": False, "finished": False}
    outcome: dict = {}
    done = threading.Event()

    def tracked() -> None:
        try:
            outcome["result"] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised in caller
            outcome["error"] = exc
        finally:
            with state_lock:
                state["finished"] = True
                if state["abandoned"]:
                    obs.gauge("resilience.harness.abandoned_workers").add(-1)
            done.set()

    worker = threading.Thread(
        target=tracked, name="repro-timeout-worker", daemon=True
    )
    worker.start()
    if not done.wait(timeout):
        with state_lock:
            if not state["finished"]:
                state["abandoned"] = True
                obs.gauge("resilience.harness.abandoned_workers").add(1)
        obs.counter("resilience.harness.timeouts").inc()
        raise ExperimentTimeoutError(
            f"call exceeded its {timeout:g}s wall-clock budget"
        ) from None
    if "error" in outcome:
        raise outcome["error"]
    return outcome["result"]


def retry_with_backoff(
    fn: Callable[[], T],
    *,
    attempts: int = 3,
    base_delay: float = 0.5,
    factor: float = 2.0,
    jitter: float = 0.0,
    rng: "Callable[[], float] | None" = None,
    retry_on: tuple = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: "Callable[[int, BaseException], None] | None" = None,
) -> T:
    """Call ``fn()`` up to ``attempts`` times with exponential backoff.

    Args:
        fn: Zero-argument callable.
        attempts: Total attempts (>= 1); the last failure propagates.
        base_delay: Sleep before the first retry, in seconds.
        factor: Backoff multiplier per retry (delay = base * factor^k).
        jitter: Fractional jitter applied to each delay: a draw ``u``
            from ``rng`` scales the delay by ``1 + jitter * (2u - 1)``,
            i.e. uniformly within ``±jitter``.  Desynchronizes workers
            that fail simultaneously so they don't retry in lockstep.
            The default ``0.0`` keeps delays bit-identical to the
            un-jittered schedule.
        rng: Uniform ``[0, 1)`` sampler used for jitter; defaults to a
            private seeded generator so retry schedules stay
            deterministic (inject your own for shared or test-pinned
            sequences).
        retry_on: Exception types worth retrying; anything else
            propagates immediately.
        sleep: Clock injection point for tests.
        on_retry: Optional callback ``(attempt_index, exception)`` fired
            before each retry sleep.

    Returns:
        The first successful ``fn()`` result.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    if not 0.0 <= jitter <= 1.0:
        raise ValueError(f"jitter must be in [0, 1], got {jitter}")
    if jitter and rng is None:
        import random

        rng = random.Random(0).random
    for attempt in range(attempts):
        try:
            return fn()
        except retry_on as exc:
            if attempt == attempts - 1:
                raise
            obs.counter("resilience.harness.retries").inc()
            if on_retry is not None:
                on_retry(attempt, exc)
            delay = base_delay * factor**attempt
            if jitter:
                delay *= 1.0 + jitter * (2.0 * rng() - 1.0)
            sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
