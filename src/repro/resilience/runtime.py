"""Timeouts and bounded retries for the experiment harness.

Pure-Python building blocks with injectable clocks so tests run in
milliseconds:

* :func:`call_with_timeout` — run a callable with a wall-clock budget,
  raising :class:`ExperimentTimeoutError` when it is exhausted;
* :func:`retry_with_backoff` — bounded retry with exponential backoff.
"""

from __future__ import annotations

import concurrent.futures
import time
from typing import Callable, TypeVar

from repro import obs

T = TypeVar("T")


class ExperimentTimeoutError(TimeoutError):
    """A harness-managed call exceeded its wall-clock budget."""


def call_with_timeout(
    fn: Callable[[], T], timeout: "float | None"
) -> T:
    """Call ``fn()`` with a wall-clock timeout.

    The call runs in a worker thread; on timeout the caller gets
    :class:`ExperimentTimeoutError` immediately.  Python threads cannot
    be killed, so the abandoned worker may keep running in the background
    until its current experiment finishes — the harness records the
    timeout and moves on, which is the graceful-degradation contract.

    Args:
        fn: Zero-argument callable.
        timeout: Budget in seconds; ``None`` calls ``fn`` directly.
    """
    if timeout is None:
        return fn()
    if timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    with concurrent.futures.ThreadPoolExecutor(max_workers=1) as pool:
        future = pool.submit(fn)
        try:
            return future.result(timeout=timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            obs.counter("resilience.harness.timeouts").inc()
            raise ExperimentTimeoutError(
                f"call exceeded its {timeout:g}s wall-clock budget"
            ) from None
        finally:
            # Don't block harness shutdown on an abandoned worker.
            pool.shutdown(wait=False, cancel_futures=True)


def retry_with_backoff(
    fn: Callable[[], T],
    *,
    attempts: int = 3,
    base_delay: float = 0.5,
    factor: float = 2.0,
    retry_on: tuple = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: "Callable[[int, BaseException], None] | None" = None,
) -> T:
    """Call ``fn()`` up to ``attempts`` times with exponential backoff.

    Args:
        fn: Zero-argument callable.
        attempts: Total attempts (>= 1); the last failure propagates.
        base_delay: Sleep before the first retry, in seconds.
        factor: Backoff multiplier per retry (delay = base * factor^k).
        retry_on: Exception types worth retrying; anything else
            propagates immediately.
        sleep: Clock injection point for tests.
        on_retry: Optional callback ``(attempt_index, exception)`` fired
            before each retry sleep.

    Returns:
        The first successful ``fn()`` result.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    for attempt in range(attempts):
        try:
            return fn()
        except retry_on as exc:
            if attempt == attempts - 1:
                raise
            obs.counter("resilience.harness.retries").inc()
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(base_delay * factor**attempt)
    raise AssertionError("unreachable")  # pragma: no cover
