"""``repro.resilience`` — fault injection, oracles, and graceful degradation.

The safety net the reproduction's correctness claims rest on:

* :mod:`repro.resilience.corruption` — adversarial input generators
  (CSR invariant violations, NaN/Inf values, truncated arrays, duplicate
  and unsorted indices) plus valid-but-degenerate graphs;
* :mod:`repro.resilience.faults` — seedable execution-fault injection
  (dropped atomics, bit-flipped accumulators, halted warps/cores) hooked
  into the executors, the GPU timing model and the multicore simulator;
* :mod:`repro.resilience.oracles` — the schedule-coverage and output
  cross-check oracles, and :func:`verified_spmm`, the self-checking
  executor with automatic fallback to the serial reference;
* :mod:`repro.resilience.runtime` — wall-clock timeouts and bounded
  exponential-backoff retries for the harness;
* :mod:`repro.resilience.checkpoint` — JSON checkpoint/resume for
  experiment batches;
* :mod:`repro.resilience.chaos` — the full injection matrix behind
  ``python -m repro chaos``, reporting detection coverage;
* :mod:`repro.resilience.chaos_serve` — the *serving* chaos matrix
  behind ``python -m repro chaos-serve``: faults injected into a live
  :class:`~repro.serve.service.InferenceService` under Poisson load,
  exercising circuit breakers, worker supervision, deadlines and the
  health surface.

Submodules are imported lazily so that hot paths (the executors consult
:func:`faults.active_plan` on every run) pull in only the fault-hook
module, never the whole layer.  See ``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    # faults
    "FaultPlan": "repro.resilience.faults",
    "ExecutionFaultError": "repro.resilience.faults",
    "inject": "repro.resilience.faults",
    "active_plan": "repro.resilience.faults",
    # corruption
    "CORRUPTIONS": "repro.resilience.corruption",
    "DEGENERATES": "repro.resilience.corruption",
    "CorruptedArrays": "repro.resilience.corruption",
    # oracles
    "OracleError": "repro.resilience.oracles",
    "ScheduleOracleError": "repro.resilience.oracles",
    "OutputOracleError": "repro.resilience.oracles",
    "ResilientResult": "repro.resilience.oracles",
    "check_schedule": "repro.resilience.oracles",
    "check_output": "repro.resilience.oracles",
    "reference_spmm": "repro.resilience.oracles",
    "verified_spmm": "repro.resilience.oracles",
    # runtime
    "ExperimentTimeoutError": "repro.resilience.runtime",
    "call_with_timeout": "repro.resilience.runtime",
    "retry_with_backoff": "repro.resilience.runtime",
    # checkpoint
    "BatchCheckpoint": "repro.resilience.checkpoint",
    "CheckpointError": "repro.resilience.checkpoint",
    # chaos
    "ChaosReport": "repro.resilience.chaos",
    "run_chaos_matrix": "repro.resilience.chaos",
    # chaos_serve
    "ServeChaosReport": "repro.resilience.chaos_serve",
    "run_serve_chaos": "repro.resilience.chaos_serve",
}

__all__ = sorted(_EXPORTS) + [
    "chaos", "chaos_serve", "checkpoint", "corruption", "faults",
    "oracles", "runtime",
]


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
