"""Adversarial input generators (`repro.resilience.corruption`).

Two registries drive the chaos matrix (:mod:`repro.resilience.chaos`):

* :data:`CORRUPTIONS` — functions that take a well-formed CSR matrix and
  return *raw arrays with one invariant deliberately broken* (truncated
  arrays, out-of-range or negative column indices, non-monotonic row
  pointers, NaN/Inf values, duplicate or unsorted column indices).  Each
  declares the layer expected to stop it: plain construction-time
  validation, opt-in strict validation, or the output oracle.
* :data:`DEGENERATES` — *valid but extreme* graphs (empty matrices,
  isolated nodes, self-loop-only graphs, a power-law graph whose evil row
  touches every column) that every executor and baseline must handle and
  agree on.

Corruptions return raw arrays rather than :class:`CSRMatrix` instances
because a well-behaved container refuses to hold them — which is exactly
the first line of defence under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.formats import CSRMatrix
from repro.graphs.generators import power_law_graph

# Detection layer each corruption class must not get past:
#   "validate" — rejected by plain (constructor) validation;
#   "strict"   — rejected only by validate_csr(..., strict=True);
#   "oracle"   — constructible, caught by the output oracle at run time.
VALIDATE, STRICT, ORACLE = "validate", "strict", "oracle"


@dataclass
class CorruptedArrays:
    """Raw CSR arrays with one invariant deliberately violated."""

    n_rows: int
    n_cols: int
    row_pointers: np.ndarray
    column_indices: np.ndarray
    values: np.ndarray
    description: str

    def as_matrix(self) -> CSRMatrix:
        """Attempt construction (validation may rightfully refuse)."""
        return CSRMatrix(
            n_rows=self.n_rows,
            n_cols=self.n_cols,
            row_pointers=self.row_pointers,
            column_indices=self.column_indices,
            values=self.values,
        )


def _arrays(matrix: CSRMatrix) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    return (
        matrix.row_pointers.copy(),
        matrix.column_indices.copy(),
        matrix.values.copy(),
    )


def _corrupted(
    matrix: CSRMatrix,
    rp: np.ndarray,
    ci: np.ndarray,
    vals: np.ndarray,
    description: str,
) -> CorruptedArrays:
    return CorruptedArrays(
        n_rows=matrix.n_rows,
        n_cols=matrix.n_cols,
        row_pointers=rp,
        column_indices=ci,
        values=vals,
        description=description,
    )


# ----------------------------------------------------------------------
# Structural corruptions (plain validation must reject)
# ----------------------------------------------------------------------
def truncated_arrays(matrix: CSRMatrix, rng: np.random.Generator) -> CorruptedArrays:
    """Drop trailing non-zeros, as an interrupted save would."""
    rp, ci, vals = _arrays(matrix)
    keep = int(rng.integers(0, max(1, matrix.nnz)))
    return _corrupted(
        matrix, rp, ci[:keep], vals[:keep],
        f"column_indices/values truncated to {keep}/{matrix.nnz} entries",
    )


def length_mismatch(matrix: CSRMatrix, rng: np.random.Generator) -> CorruptedArrays:
    """values array shorter than column_indices."""
    rp, ci, vals = _arrays(matrix)
    return _corrupted(
        matrix, rp, ci, vals[:-1] if len(vals) else np.array([1.0]),
        "values and column_indices lengths differ",
    )


def negative_column_index(
    matrix: CSRMatrix, rng: np.random.Generator
) -> CorruptedArrays:
    rp, ci, vals = _arrays(matrix)
    if len(ci):
        ci[int(rng.integers(0, len(ci)))] = -1
    else:
        ci = np.array([-1], dtype=np.int64)
        vals = np.array([1.0])
    return _corrupted(matrix, rp, ci, vals, "a column index is negative")


def out_of_range_column_index(
    matrix: CSRMatrix, rng: np.random.Generator
) -> CorruptedArrays:
    rp, ci, vals = _arrays(matrix)
    if len(ci):
        ci[int(rng.integers(0, len(ci)))] = matrix.n_cols
    return _corrupted(matrix, rp, ci, vals, "a column index is >= n_cols")


def decreasing_row_pointers(
    matrix: CSRMatrix, rng: np.random.Generator
) -> CorruptedArrays:
    rp, ci, vals = _arrays(matrix)
    if len(rp) > 2:
        mid = int(rng.integers(1, len(rp) - 1))
        rp[mid] = rp[mid - 1] + rp[-1]  # forces a later decrease
    return _corrupted(matrix, rp, ci, vals, "row_pointers not non-decreasing")


def bad_first_pointer(matrix: CSRMatrix, rng: np.random.Generator) -> CorruptedArrays:
    rp, ci, vals = _arrays(matrix)
    rp[0] = 1
    return _corrupted(matrix, rp, ci, vals, "row_pointers[0] != 0")


def bad_last_pointer(matrix: CSRMatrix, rng: np.random.Generator) -> CorruptedArrays:
    rp, ci, vals = _arrays(matrix)
    rp[-1] = len(ci) + 3
    return _corrupted(matrix, rp, ci, vals, "row_pointers[-1] != nnz")


# ----------------------------------------------------------------------
# Value corruptions (strict validation rejects; output oracle also catches)
# ----------------------------------------------------------------------
def nan_values(matrix: CSRMatrix, rng: np.random.Generator) -> CorruptedArrays:
    rp, ci, vals = _arrays(matrix)
    if len(vals):
        vals[int(rng.integers(0, len(vals)))] = np.nan
    return _corrupted(matrix, rp, ci, vals, "a stored value is NaN")


def inf_values(matrix: CSRMatrix, rng: np.random.Generator) -> CorruptedArrays:
    rp, ci, vals = _arrays(matrix)
    if len(vals):
        vals[int(rng.integers(0, len(vals)))] = np.inf
    return _corrupted(matrix, rp, ci, vals, "a stored value is infinite")


# ----------------------------------------------------------------------
# Index-discipline corruptions (strict validation must reject)
# ----------------------------------------------------------------------
def duplicate_column_indices(
    matrix: CSRMatrix, rng: np.random.Generator
) -> CorruptedArrays:
    """Duplicate an edge inside a row — double-counts it in aggregation."""
    rp, ci, vals = _arrays(matrix)
    lengths = np.diff(rp)
    rows = np.flatnonzero(lengths >= 2)
    if len(rows):
        row = int(rng.choice(rows))
        lo = int(rp[row])
        ci[lo + 1] = ci[lo]
    return _corrupted(
        matrix, rp, ci, vals, "a row stores the same column index twice"
    )


def unsorted_column_indices(
    matrix: CSRMatrix, rng: np.random.Generator
) -> CorruptedArrays:
    """Swap two column indices within a row out of order."""
    rp, ci, vals = _arrays(matrix)
    lengths = np.diff(rp)
    rows = np.flatnonzero(lengths >= 2)
    for row in rng.permutation(rows):
        lo, hi = int(rp[row]), int(rp[row + 1])
        segment = ci[lo:hi]
        if segment.min() != segment.max():
            order = np.argsort(segment)
            ci[lo:hi] = segment[order][::-1]  # strictly decreasing somewhere
            vals[lo:hi] = vals[lo:hi][order][::-1]
            break
    return _corrupted(
        matrix, rp, ci, vals, "a row's column indices are out of order"
    )


CORRUPTIONS: dict[str, tuple[Callable, str]] = {
    "truncated-arrays": (truncated_arrays, VALIDATE),
    "length-mismatch": (length_mismatch, VALIDATE),
    "negative-column-index": (negative_column_index, VALIDATE),
    "oob-column-index": (out_of_range_column_index, VALIDATE),
    "decreasing-row-pointers": (decreasing_row_pointers, VALIDATE),
    "bad-first-pointer": (bad_first_pointer, VALIDATE),
    "bad-last-pointer": (bad_last_pointer, VALIDATE),
    "nan-values": (nan_values, ORACLE),
    "inf-values": (inf_values, ORACLE),
    "duplicate-column-indices": (duplicate_column_indices, STRICT),
    "unsorted-column-indices": (unsorted_column_indices, STRICT),
}


# ----------------------------------------------------------------------
# Degenerate (valid but extreme) graphs
# ----------------------------------------------------------------------
def empty_matrix(seed: int = 0) -> CSRMatrix:
    """A 0 x 0 matrix: no rows, no columns, no non-zeros."""
    return CSRMatrix(
        n_rows=0,
        n_cols=0,
        row_pointers=np.zeros(1, dtype=np.int64),
        column_indices=np.empty(0, dtype=np.int64),
        values=np.empty(0, dtype=np.float64),
    )


def single_node(seed: int = 0) -> CSRMatrix:
    """One node with a single self-loop."""
    return CSRMatrix.from_arrays([0, 1], [0])


def all_isolated(seed: int = 0, n_nodes: int = 13) -> CSRMatrix:
    """Every node isolated: nnz = 0 with nonzero shape (all rows empty)."""
    return CSRMatrix.from_arrays(
        np.zeros(n_nodes + 1, dtype=np.int64), np.empty(0, dtype=np.int64)
    )


def self_loops_only(seed: int = 0, n_nodes: int = 9) -> CSRMatrix:
    """The identity pattern — each node's only neighbour is itself."""
    return CSRMatrix.identity(n_nodes)


def max_degree_row(seed: int = 0, n_nodes: int = 40) -> CSRMatrix:
    """A power-law graph plus one evil row adjacent to *every* node."""
    base = power_law_graph(
        n_nodes=n_nodes, nnz=4 * n_nodes, max_degree=n_nodes // 2, seed=seed
    ).to_dense()
    base[0, :] = 1.0  # row 0 touches every column
    return CSRMatrix.from_dense(base)


DEGENERATES: dict[str, Callable[..., CSRMatrix]] = {
    "empty-matrix": empty_matrix,
    "single-node": single_node,
    "all-isolated": all_isolated,
    "self-loops-only": self_loops_only,
    "max-degree-row": max_degree_row,
}
