"""The chaos matrix behind ``python -m repro chaos``.

Runs every adversarial case the resilience layer claims to handle and
reports *detection coverage* — the fraction of injected corruptions and
execution faults that were rejected, detected, or recovered rather than
silently producing a wrong answer:

* every :data:`~repro.resilience.corruption.CORRUPTIONS` class against
  its declared detection layer (plain validation, strict validation, or
  the output oracle via :func:`~repro.resilience.oracles.verified_spmm`);
* execution faults (dropped atomics, bit-flipped accumulators, a failing
  unit) injected into both SpMM executors, the GPU timing model and the
  multicore simulator, which must all end in oracle detection and
  fallback recovery or an :class:`ExecutionFaultError`;
* every :data:`~repro.resilience.corruption.DEGENERATES` graph through
  the verified executor and all baselines, which must simply agree with
  the independent reference.

Exit status 0 requires 100% detection coverage *and* all degenerate
cases passing — anything less means a silent-wrong-output path exists.
The run also writes a ``BENCH_chaos.json`` run record so robustness
regressions show up next to performance regressions.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.formats import CSRMatrix
from repro.formats.validation import validate_csr
from repro.graphs.generators import power_law_graph
from repro.resilience import corruption, faults, oracles

# Case outcomes, from best to worst.
REJECTED = "rejected"      # validation refused the input
DETECTED = "detected"      # an oracle/self-check raised, no recovery asked
RECOVERED = "recovered"    # detected, then the serial fallback recovered
OK = "ok"                  # valid input handled correctly (degenerates)
SILENT = "SILENT"          # adversarial input produced output unchallenged

_DIM = 8


@dataclass
class ChaosCase:
    """One adversarial (or degenerate) scenario and its observed outcome."""

    name: str
    kind: str                # "corruption" | "execution" | "degenerate"
    expected_layer: str      # declared detection layer, or "oracle"/"valid"
    outcome: str
    detail: str = ""

    @property
    def caught(self) -> bool:
        return self.outcome in (REJECTED, DETECTED, RECOVERED, OK)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "expected_layer": self.expected_layer,
            "outcome": self.outcome,
            "detail": self.detail,
        }


@dataclass
class ChaosReport:
    """Aggregate result of one chaos-matrix run."""

    seed: int
    cases: list[ChaosCase] = field(default_factory=list)

    @property
    def adversarial(self) -> list[ChaosCase]:
        return [c for c in self.cases if c.kind != "degenerate"]

    @property
    def silent(self) -> list[ChaosCase]:
        return [c for c in self.cases if not c.caught]

    @property
    def coverage(self) -> float:
        """Fraction of adversarial cases that did not slip through."""
        adversarial = self.adversarial
        if not adversarial:
            return 1.0
        caught = sum(1 for c in adversarial if c.caught)
        return caught / len(adversarial)

    @property
    def passed(self) -> bool:
        return not self.silent

    def to_dict(self) -> dict:
        outcomes: dict[str, int] = {}
        for case in self.cases:
            outcomes[case.outcome] = outcomes.get(case.outcome, 0) + 1
        return {
            "seed": self.seed,
            "n_cases": len(self.cases),
            "coverage": self.coverage,
            "passed": self.passed,
            "outcomes": outcomes,
            "cases": [c.to_dict() for c in self.cases],
        }

    def render(self) -> str:
        lines = [f"chaos matrix (seed={self.seed}): {len(self.cases)} cases"]
        width = max(len(c.name) for c in self.cases) if self.cases else 0
        for case in self.cases:
            lines.append(
                f"  {case.name:<{width}}  {case.kind:<10} "
                f"[{case.expected_layer:<8}] -> {case.outcome}"
                + (f"  ({case.detail})" if case.detail and not case.caught else "")
            )
        lines.append(
            f"detection coverage: {self.coverage:.0%} "
            f"({len(self.adversarial) - len(self.silent)}"
            f"/{len(self.adversarial)} adversarial cases caught)"
        )
        if self.silent:
            lines.append(
                "SILENT failures: " + ", ".join(c.name for c in self.silent)
            )
        return "\n".join(lines)


def _base_matrix(seed: int) -> CSRMatrix:
    """A mid-size power-law graph with plenty of partial rows."""
    return power_law_graph(n_nodes=60, nnz=360, max_degree=16, seed=seed)


def _run_corruption_case(
    name: str, make, layer: str, seed: int, rng: np.random.Generator
) -> ChaosCase:
    """Push one corrupted input through its declared detection layer."""
    corrupted = make(_base_matrix(seed), rng)
    # Oracle-layer corruptions skip strict validation (which would also
    # reject them) so the chaos matrix exercises the last line of defence.
    strict = layer == corruption.STRICT
    try:
        validate_csr(
            corrupted.row_pointers,
            corrupted.column_indices,
            corrupted.values,
            corrupted.n_rows,
            corrupted.n_cols,
            strict=strict,
        )
    except (ValueError, TypeError) as exc:
        return ChaosCase(name, "corruption", layer, REJECTED, str(exc))
    if layer in (corruption.VALIDATE, corruption.STRICT):
        return ChaosCase(
            name, "corruption", layer, SILENT,
            f"validate_csr(strict={strict}) accepted: {corrupted.description}",
        )
    # Oracle-layer corruption: constructible, so it must be caught at run
    # time.  (Strict validation also rejects NaN/Inf, but the chaos matrix
    # exercises the last line of defence here.)
    try:
        matrix = corrupted.as_matrix()
    except (ValueError, TypeError) as exc:
        return ChaosCase(name, "corruption", layer, REJECTED, str(exc))
    dense = rng.standard_normal((matrix.n_cols, _DIM))
    try:
        result = oracles.verified_spmm(matrix, dense, n_threads=16)
    except oracles.OracleError as exc:
        return ChaosCase(name, "corruption", layer, DETECTED, str(exc))
    if result.fallback_used:
        return ChaosCase(
            name, "corruption", layer, RECOVERED, result.detected or ""
        )
    return ChaosCase(
        name, "corruption", layer, SILENT,
        f"oracles accepted output for: {corrupted.description}",
    )


def _run_executor_fault_case(
    executor: str, fault_kind: str, plan_kwargs: dict, seed: int,
    rng: np.random.Generator,
) -> ChaosCase:
    """Inject an execution fault into one SpMM executor; expect recovery."""
    name = f"{fault_kind}/{executor}"
    matrix = power_law_graph(n_nodes=200, nnz=1200, max_degree=60, seed=seed)
    dense = rng.standard_normal((matrix.n_cols, _DIM))
    reference = oracles.reference_spmm(matrix, dense)
    with faults.inject(seed=seed, **plan_kwargs) as plan:
        try:
            result = oracles.verified_spmm(
                matrix, dense, n_threads=37, executor=executor
            )
        except oracles.OracleError as exc:
            return ChaosCase(name, "execution", "oracle", DETECTED, str(exc))
    if plan.total_injected == 0:
        return ChaosCase(
            name, "execution", "oracle", SILENT,
            "fault plan injected nothing — the case tested no fault",
        )
    if not result.fallback_used:
        return ChaosCase(
            name, "execution", "oracle", SILENT,
            f"{plan.total_injected} faults injected, output accepted",
        )
    if not np.allclose(result.output, reference, rtol=1e-9, atol=1e-9):
        return ChaosCase(
            name, "execution", "oracle", SILENT,
            "fallback output disagrees with the reference",
        )
    return ChaosCase(
        name, "execution", "oracle", RECOVERED,
        f"{plan.total_injected} injected, fallback verified",
    )


def _run_gpu_fault_case(seed: int) -> ChaosCase:
    """A halted warp must trip the GPU timing model's self-check."""
    from repro.gpu.device import quadro_rtx_6000
    from repro.gpu.kernels import mergepath_workload
    from repro.gpu.timing import simulate

    name = "halted-warp/gpu-timing"
    matrix = _base_matrix(seed)
    device = quadro_rtx_6000()
    with faults.inject(seed=seed, fail_unit=3) as plan:
        workload = mergepath_workload(matrix, 16, device)
        try:
            simulate(workload, device)
        except faults.ExecutionFaultError as exc:
            return ChaosCase(name, "execution", "self-check", DETECTED, str(exc))
    detail = (
        f"{plan.total_injected} injected, timing accepted"
        if plan.total_injected
        else "fault plan injected nothing"
    )
    return ChaosCase(name, "execution", "self-check", SILENT, detail)


def _run_multicore_fault_case(seed: int) -> ChaosCase:
    """A halted core must trip the simulator's completion self-check."""
    from repro.multicore.kernels import run_mergepath

    name = "halted-core/multicore"
    matrix = _base_matrix(seed)
    with faults.inject(seed=seed, fail_unit=2) as plan:
        try:
            run_mergepath(matrix, 8, n_cores=16)
        except faults.ExecutionFaultError as exc:
            return ChaosCase(name, "execution", "self-check", DETECTED, str(exc))
    detail = (
        f"{plan.total_injected} injected, simulation accepted"
        if plan.total_injected
        else "fault plan injected nothing"
    )
    return ChaosCase(name, "execution", "self-check", SILENT, detail)


def _baseline_runs(matrix: CSRMatrix, dense: np.ndarray) -> dict:
    from repro.baselines import (
        cusparse_like_spmm,
        gnnadvisor_spmm,
        merge_path_serial_spmm,
        row_splitting_spmm,
    )

    return {
        "merge-path-serial": lambda: merge_path_serial_spmm(matrix, dense, 4)[0],
        "row-splitting": lambda: row_splitting_spmm(matrix, dense, 4)[0],
        "gnnadvisor": lambda: gnnadvisor_spmm(matrix, dense)[0],
        "cusparse-like": lambda: cusparse_like_spmm(matrix, dense)[0],
    }


def _run_degenerate_case(
    name: str, factory, rng: np.random.Generator
) -> ChaosCase:
    """Every executor and baseline must agree on a valid-but-extreme graph."""
    matrix = factory()
    dense = rng.standard_normal((matrix.n_cols, _DIM))
    reference = oracles.reference_spmm(matrix, dense)
    failures = []
    for executor in ("vectorized", "reference"):
        try:
            result = oracles.verified_spmm(
                matrix, dense, n_threads=4, executor=executor, fallback=False
            )
            if not np.allclose(result.output, reference, rtol=1e-9, atol=1e-9):
                failures.append(f"{executor}: disagrees with reference")
        except Exception as exc:  # noqa: BLE001 - report, don't crash the matrix
            failures.append(f"{executor}: {type(exc).__name__}: {exc}")
    for label, run in _baseline_runs(matrix, dense).items():
        try:
            output = run()
            if not np.allclose(output, reference, rtol=1e-9, atol=1e-9):
                failures.append(f"{label}: disagrees with reference")
        except Exception as exc:  # noqa: BLE001
            failures.append(f"{label}: {type(exc).__name__}: {exc}")
    if failures:
        return ChaosCase(
            name, "degenerate", "valid", SILENT, "; ".join(failures)
        )
    return ChaosCase(name, "degenerate", "valid", OK)


def run_chaos_matrix(seed: int = 0) -> ChaosReport:
    """Run every chaos case with a deterministic seed and collect outcomes."""
    report = ChaosReport(seed=seed)
    rng = np.random.default_rng(seed)

    for name, (make, layer) in corruption.CORRUPTIONS.items():
        report.cases.append(_run_corruption_case(name, make, layer, seed, rng))

    fault_kinds = {
        "dropped-atomic": {"drop_atomic": 1.0},
        "bitflip": {"bitflip": 0.6},
        "failing-unit": {"fail_unit": 5},
    }
    for fault_kind, plan_kwargs in fault_kinds.items():
        for executor in ("vectorized", "reference"):
            report.cases.append(
                _run_executor_fault_case(
                    executor, fault_kind, plan_kwargs, seed, rng
                )
            )
    report.cases.append(_run_gpu_fault_case(seed))
    report.cases.append(_run_multicore_fault_case(seed))

    for name, factory in corruption.DEGENERATES.items():
        report.cases.append(_run_degenerate_case(name, factory, rng))

    obs.counter("resilience.chaos.runs").inc()
    obs.gauge("resilience.chaos.coverage").set(report.coverage)
    obs.counter("resilience.chaos.silent_cases").inc(len(report.silent))
    return report


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point for ``python -m repro chaos``."""
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description=(
            "Run the fault-injection matrix and report detection coverage."
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="fault-plan seed (default: 0)"
    )
    parser.add_argument(
        "--bench-dir",
        default=None,
        help="run-record directory (default: benchmarks/results)",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        help="also write the full report as JSON to this path",
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip writing the BENCH_chaos.json run record",
    )
    args = parser.parse_args(argv)

    with obs.profiled() as session:
        report = run_chaos_matrix(seed=args.seed)
    print(report.render())

    if not args.no_record:
        record = obs.run_record(
            "chaos",
            metrics=session.snapshot(),
            wall_seconds=session.wall_seconds,
            status="ok" if report.passed else "silent-failures",
            extra={"chaos": report.to_dict()},
        )
        path = obs.write_run_record(record, args.bench_dir)
        print(f"run record: {path}")
    if args.json_out:
        from repro.formats.io import atomic_write_text

        atomic_write_text(
            args.json_out,
            json.dumps(report.to_dict(), indent=1) + "\n",
            encoding="utf-8",
        )
        print(f"report: {args.json_out}")
    return 0 if report.passed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
