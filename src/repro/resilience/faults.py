"""Seedable execution-fault injection (`repro.resilience.faults`).

A :class:`FaultPlan` describes simulated hardware misbehaviour — dropped
atomic updates, bit-flipped accumulators, a parallel unit (thread, warp or
core, interpreted per executor) that halts mid-run.  Executors and timing
models consult the process-global *active* plan through seedable hooks:

* :mod:`repro.core.spmm` drops atomic segment applications, flips
  accumulator bits and zeroes a failing unit's contribution;
* :mod:`repro.gpu.timing` halts a warp (its dependent chain never
  finishes), which the model's finiteness self-check turns into an
  :class:`ExecutionFaultError`;
* :mod:`repro.multicore.system` halts a core mid-trace, which the
  simulator's completion self-check detects the same way.

With no plan active — the default — every hook is a single global load,
so production paths pay nothing.  Plans are deterministic: the same seed
injects the same faults, which is what lets ``python -m repro chaos``
assert 100% detection coverage.

Every injection/detection/recovery is double-counted: on the plan itself
(so tests can assert without an obs registry) and on the
``resilience.faults.*`` counters when collection is on.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro import obs


class ExecutionFaultError(RuntimeError):
    """An executor's self-check found evidence of a mid-run execution fault."""


class FaultPlan:
    """A deterministic description of the faults to inject.

    Args:
        seed: Seed for the plan's private RNG (probabilistic faults draw
            from it in execution order, so a seed pins the fault set).
        drop_atomic: Probability that each atomic output update is
            silently dropped.
        bitflip: Probability that each accumulated write segment has one
            high mantissa bit of one accumulator entry flipped.
        fail_unit: Index of a parallel unit that halts: the executors
            zero that unit's contribution, the GPU model halts that warp,
            the multicore simulator halts that core mid-trace.  ``None``
            disables the fault.
        crash_worker: Probability that a serving worker thread is killed
            outright before executing its gathered batch (consulted by
            :class:`~repro.serve.service.InferenceService`'s worker
            loop, *outside* the per-batch error handler, so the crash
            exercises the supervisor's restart path).
        crash_proc: Probability that a process-pool worker subprocess
            dies (``os._exit``) mid-batch — exercises the pool's crash
            containment and respawn path
            (:mod:`repro.serve.procpool`).
        hang_proc: Probability that a worker subprocess busy-loops
            forever instead of computing — exercises the heartbeat
            reaper's SIGKILL path.
        hog_proc: Probability that a worker subprocess balloons its RSS
            before computing — exercises the pool's memory guard.
        delay_proc: Probability that a worker subprocess sleeps
            ``delay_proc_seconds`` before computing — opens a window
            for externally-injected kills without corrupting results.
        delay_proc_seconds: Sleep applied when the delay fault fires.
    """

    def __init__(
        self,
        seed: int = 0,
        drop_atomic: float = 0.0,
        bitflip: float = 0.0,
        fail_unit: "int | None" = None,
        crash_worker: float = 0.0,
        crash_proc: float = 0.0,
        hang_proc: float = 0.0,
        hog_proc: float = 0.0,
        delay_proc: float = 0.0,
        delay_proc_seconds: float = 0.5,
    ) -> None:
        for name, prob in (
            ("drop_atomic", drop_atomic),
            ("bitflip", bitflip),
            ("crash_worker", crash_worker),
            ("crash_proc", crash_proc),
            ("hang_proc", hang_proc),
            ("hog_proc", hog_proc),
            ("delay_proc", delay_proc),
        ):
            if not 0.0 <= prob <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {prob}")
        self.seed = seed
        self.drop_atomic = drop_atomic
        self.bitflip = bitflip
        self.fail_unit = fail_unit
        self.crash_worker = crash_worker
        self.crash_proc = crash_proc
        self.hang_proc = hang_proc
        self.hog_proc = hog_proc
        self.delay_proc = delay_proc
        self.delay_proc_seconds = delay_proc_seconds
        self.rng = np.random.default_rng(seed)
        self.injected: dict[str, int] = {}
        self.detected: dict[str, int] = {}
        self.recovered: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def note_injected(self, kind: str, count: int = 1) -> None:
        """Record ``count`` injected faults of ``kind``."""
        if count <= 0:
            return
        self.injected[kind] = self.injected.get(kind, 0) + count
        obs.counter("resilience.faults.injected", fault=kind).inc(count)

    def note_detected(self, kind: str, count: int = 1) -> None:
        """Record ``count`` detected faults of ``kind``."""
        if count <= 0:
            return
        self.detected[kind] = self.detected.get(kind, 0) + count
        obs.counter("resilience.faults.detected", fault=kind).inc(count)

    def note_recovered(self, kind: str, count: int = 1) -> None:
        """Record ``count`` recovered faults of ``kind``."""
        if count <= 0:
            return
        self.recovered[kind] = self.recovered.get(kind, 0) + count
        obs.counter("resilience.faults.recovered", fault=kind).inc(count)

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def should_crash_worker(self) -> bool:
        """Roll the worker-crash fault (and account for it when it fires)."""
        if self.crash_worker <= 0.0:
            return False
        if self.rng.random() >= self.crash_worker:
            return False
        self.note_injected("worker-crash")
        return True

    def proc_fault(self) -> "str | None":
        """Roll the subprocess-worker faults in a fixed order.

        Returns the first fault kind that fires — ``"crash"``,
        ``"hang"``, ``"hog"`` or ``"delay"`` — or ``None``.  The pool
        rolls this in the *parent* (the plan's RNG stays deterministic
        and single-process) and ships the verdict to the child with the
        batch.
        """
        for kind, prob in (
            ("crash", self.crash_proc),
            ("hang", self.hang_proc),
            ("hog", self.hog_proc),
            ("delay", self.delay_proc),
        ):
            if prob > 0.0 and self.rng.random() < prob:
                if kind != "delay":
                    self.note_injected(f"proc-{kind}")
                return kind
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(seed={self.seed}, drop_atomic={self.drop_atomic}, "
            f"bitflip={self.bitflip}, fail_unit={self.fail_unit}, "
            f"crash_worker={self.crash_worker})"
        )


_active_plan: "FaultPlan | None" = None


def active_plan() -> "FaultPlan | None":
    """The currently injected :class:`FaultPlan`, or ``None`` (the default)."""
    return _active_plan


@contextmanager
def inject(
    plan: "FaultPlan | None" = None, **kwargs
) -> Iterator[FaultPlan]:
    """Activate a fault plan for the scope of the ``with`` block.

    Pass an explicit :class:`FaultPlan` or keyword arguments to build one.
    Plans nest; the previous plan is restored on exit.
    """
    global _active_plan
    if plan is None:
        plan = FaultPlan(**kwargs)
    elif kwargs:
        raise TypeError("pass either a FaultPlan or keyword arguments, not both")
    previous = _active_plan
    _active_plan = plan
    try:
        yield plan
    finally:
        _active_plan = previous


def detected_externally(kind: str) -> None:
    """Credit a detection to the active plan (no-op without one).

    Called by self-checks (oracles, simulator completion checks) that
    catch a fault they did not inject themselves.
    """
    plan = _active_plan
    if plan is not None:
        plan.note_detected(kind)
    obs.counter("resilience.checks.detections", check=kind).inc()


def flip_mantissa_bit(array: np.ndarray, flat_index: int, bit: int = 51) -> None:
    """Flip one mantissa bit of a float64 array entry, in place.

    Bit 51 is the top mantissa bit: flipping it perturbs a nonzero value
    by a factor of ~1.5, large enough for any tolerance oracle to see.
    """
    if array.dtype != np.float64:
        raise TypeError(f"expected float64 array, got {array.dtype}")
    raw = array.reshape(-1).view(np.uint64)
    raw[flat_index] ^= np.uint64(1) << np.uint64(bit)
