"""The *serving* chaos matrix behind ``python -m repro chaos-serve``.

PR 2's chaos matrix (:mod:`repro.resilience.chaos`) stops at the
executor boundary; this one injects faults into a **live**
:class:`~repro.serve.service.InferenceService` under Poisson load and
checks the failure-domain guards end to end:

* **persistent backend exceptions** must trip the backend's circuit
  breaker; while the breaker is open the faulty backend must serve
  *zero* requests (the verified floor takes over), and once the fault
  stops the half-open probe path must close the breaker and return the
  service to ``HEALTHY``;
* **worker-thread crashes** (injected through
  :class:`~repro.resilience.faults.FaultPlan` ``crash_worker``, outside
  the per-batch error handler) must fail the in-flight batch cleanly —
  an ``error`` response, never a hung future — and the supervisor must
  restart the worker so traffic keeps flowing;
* **executor faults** (bit-flipped accumulators) must degrade to the
  verified fallback with every accepted output still matching the
  independent reference;
* **corrupted request matrices** (NaN values) must produce a detected
  ``error`` response, never an accepted wrong product;
* **expired deadlines** must be shed with ``deadline_exceeded`` *before*
  execution — a shed request never reaches a backend;
* a **deliberately slowed backend** must be localized by the request
  traces (:mod:`repro.obs.rtrace`): the flight recorder's slowest trace
  must attribute the delay to the ``kernel`` stage, not the queue.

Every accepted response in every scenario is cross-checked against
:func:`~repro.resilience.oracles.reference_spmm`; any mismatch or
missed guard is a ``SILENT`` case.  Exit status 0 requires zero silent
cases *and* the demonstrations the guards exist for: at least one
breaker trip, one half-open recovery, one worker restart, and one
deadline shed.  The run writes a ``BENCH_chaos_serve.json`` run record.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.obs import rtrace
from repro.formats import CSRMatrix
from repro.graphs.generators import power_law_graph
from repro.resilience import corruption, faults
from repro.resilience.chaos import (
    DETECTED,
    OK,
    RECOVERED,
    SILENT,
    ChaosCase,
)
from repro.resilience.oracles import reference_spmm
from repro.serve.dispatch import FLOOR_BACKEND, AdaptiveDispatcher, Backend
from repro.serve.guard import BreakerConfig
from repro.serve.health import HEALTHY, UNHEALTHY, HealthPolicy
from repro.serve.plancache import PlanCache
from repro.serve.service import InferenceService, ServeConfig

_DIM = 8
_KIND = "serving"


@dataclass
class ServeChaosReport:
    """Aggregate result of one live-service injection run."""

    seed: int
    cases: "list[ChaosCase]" = field(default_factory=list)
    breaker_trips: int = 0
    breaker_recoveries: int = 0
    worker_restarts: int = 0
    deadline_shed: int = 0
    floor_requests: int = 0
    verified_responses: int = 0
    slow_kernel_traces: int = 0

    @property
    def silent(self) -> "list[ChaosCase]":
        return [c for c in self.cases if not c.caught]

    @property
    def coverage(self) -> float:
        if not self.cases:
            return 1.0
        return (len(self.cases) - len(self.silent)) / len(self.cases)

    @property
    def passed(self) -> bool:
        """Zero silent cases *and* every guard demonstrably exercised."""
        return (
            not self.silent
            and self.breaker_trips >= 1
            and self.breaker_recoveries >= 1
            and self.worker_restarts >= 1
            and self.deadline_shed >= 1
        )

    def to_dict(self) -> dict:
        outcomes: "dict[str, int]" = {}
        for case in self.cases:
            outcomes[case.outcome] = outcomes.get(case.outcome, 0) + 1
        return {
            "seed": self.seed,
            "n_cases": len(self.cases),
            "coverage": self.coverage,
            "passed": self.passed,
            "outcomes": outcomes,
            "demonstrations": {
                "breaker_trips": self.breaker_trips,
                "breaker_recoveries": self.breaker_recoveries,
                "worker_restarts": self.worker_restarts,
                "deadline_shed": self.deadline_shed,
                "floor_requests": self.floor_requests,
                "verified_responses": self.verified_responses,
                "slow_kernel_traces": self.slow_kernel_traces,
            },
            "cases": [c.to_dict() for c in self.cases],
        }

    def render(self) -> str:
        lines = [
            f"serving chaos matrix (seed={self.seed}): "
            f"{len(self.cases)} cases"
        ]
        width = max(len(c.name) for c in self.cases) if self.cases else 0
        for case in self.cases:
            lines.append(
                f"  {case.name:<{width}}  [{case.expected_layer:<10}] "
                f"-> {case.outcome}"
                + (f"  ({case.detail})" if case.detail and not case.caught else "")
            )
        lines.append(
            f"detection coverage: {self.coverage:.0%} "
            f"({len(self.cases) - len(self.silent)}/{len(self.cases)} caught)"
        )
        lines.append(
            f"demonstrated: {self.breaker_trips} breaker trip(s), "
            f"{self.breaker_recoveries} half-open recover(ies), "
            f"{self.worker_restarts} worker restart(s), "
            f"{self.deadline_shed} deadline shed(s), "
            f"{self.verified_responses} responses verified"
        )
        if self.silent:
            lines.append(
                "SILENT failures: " + ", ".join(c.name for c in self.silent)
            )
        return "\n".join(lines)


class _CountingBackend:
    """A controllable backend: countable calls, switchable failure."""

    def __init__(self, delay: float = 0.0) -> None:
        self.delay = delay
        self.failing = False
        self._lock = threading.Lock()
        self.calls = 0

    def run(self, matrix, dense, plans, plan_dim):
        with self._lock:
            self.calls += 1
            failing = self.failing
        if failing:
            raise RuntimeError("injected persistent backend fault")
        if self.delay:
            time.sleep(self.delay)
        return matrix.multiply_dense(dense)


def _base_matrix(seed: int) -> CSRMatrix:
    return power_law_graph(n_nodes=60, nnz=360, max_degree=16, seed=seed)


def _poisson_submit(
    service: InferenceService,
    matrix: CSRMatrix,
    rng: np.random.Generator,
    count: int,
    rate: float,
    deadline_ms: "float | None" = None,
):
    """Open-loop Poisson arrivals; returns ``(dense, future)`` pairs."""
    inflight = []
    for _ in range(count):
        dense = rng.random((matrix.n_cols, _DIM))
        inflight.append(
            (dense, service.submit(matrix, dense, deadline_ms=deadline_ms))
        )
        time.sleep(rng.exponential(1.0 / rate))
    return inflight


def _check_ok_outputs(
    report: ServeChaosReport,
    matrix: CSRMatrix,
    entries,
    name: str,
) -> "list[str]":
    """Verify every accepted response against the scipy reference."""
    problems = []
    for dense, future in entries:
        response = future.result(timeout=30.0)
        if response.ok:
            report.verified_responses += 1
            if not np.allclose(
                response.output, reference_spmm(matrix, dense),
                rtol=1e-9, atol=1e-9,
            ):
                problems.append(
                    f"{name}: accepted output for request "
                    f"{response.request_id} disagrees with the reference"
                )
    return problems


def _wait_for(predicate, timeout: float = 5.0, interval: float = 0.01) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _run_breaker_scenario(
    report: ServeChaosReport, seed: int, rng: np.random.Generator, rate: float
) -> None:
    """Persistent backend fault -> trip -> isolation -> half-open recovery."""
    matrix = _base_matrix(seed)
    flaky = _CountingBackend()
    breaker_config = BreakerConfig(
        consecutive_failures=3,
        cooldown_seconds=1.0,
        half_open_probes=2,
        half_open_successes=1,
    )
    dispatcher = AdaptiveDispatcher(
        [Backend("flaky", flaky.run)],
        plan_cache=PlanCache(),
        epsilon=0.0,
        breaker_config=breaker_config,
    )
    config = ServeConfig(max_queue=64, max_batch=1, max_wait_ms=0.0, n_workers=1)
    problems: "list[str]" = []
    with InferenceService(dispatcher, config) as service:
        breaker = dispatcher.breaker("flaky")

        # Phase A: the backend fails persistently; the breaker must trip.
        flaky.failing = True
        entries = _poisson_submit(service, matrix, rng, 8, rate)
        problems += _check_ok_outputs(report, matrix, entries, "breaker-trip")
        tripped = _wait_for(lambda: breaker.state == "open", timeout=5.0)
        if tripped:
            report.breaker_trips += breaker.opened_total
            report.cases.append(
                ChaosCase(
                    "persistent-fault/breaker-trips", _KIND, "breaker",
                    DETECTED,
                    f"opened after {flaky.calls} backend calls",
                )
            )
        else:
            report.cases.append(
                ChaosCase(
                    "persistent-fault/breaker-trips", _KIND, "breaker",
                    SILENT,
                    f"breaker state {breaker.state!r} after 8 failing "
                    "requests — never tripped",
                )
            )

        # Phase B: while open, the faulty backend must serve nothing —
        # the verified floor carries the traffic.
        calls_at_open = flaky.calls
        entries = _poisson_submit(service, matrix, rng, 5, rate)
        floor_served = 0
        for dense, future in entries:
            response = future.result(timeout=30.0)
            if response.ok and response.backend == FLOOR_BACKEND:
                floor_served += 1
                report.verified_responses += 1
                if not np.allclose(
                    response.output, reference_spmm(matrix, dense),
                    rtol=1e-9, atol=1e-9,
                ):
                    problems.append(
                        "open-breaker: floor output disagrees with reference"
                    )
        report.floor_requests += floor_served
        leaked = flaky.calls - calls_at_open
        if tripped and leaked == 0 and floor_served == 5:
            health = service.health()
            report.cases.append(
                ChaosCase(
                    "open-breaker/isolates-backend", _KIND, "breaker",
                    OK,
                    f"floor served {floor_served}/5, health={health.status}",
                )
            )
            if health.status != UNHEALTHY or not any(
                c.kind == "all-breakers-open" for c in health.causes
            ):
                problems.append(
                    "open-breaker: health did not report all-breakers-open "
                    f"(got {health.status}: "
                    f"{[c.kind for c in health.causes]})"
                )
        else:
            report.cases.append(
                ChaosCase(
                    "open-breaker/isolates-backend", _KIND, "breaker",
                    SILENT,
                    f"{leaked} request(s) leaked to the tripped backend, "
                    f"{floor_served}/5 served by the floor",
                )
            )

        # Phase C: fault stops; after the cooldown a half-open probe must
        # close the breaker and the service must return to HEALTHY.
        flaky.failing = False
        recovered = _wait_for(
            lambda: breaker.available(), timeout=5.0, interval=0.05
        )
        closed = False
        if recovered:
            entries = _poisson_submit(service, matrix, rng, 4, rate)
            problems += _check_ok_outputs(
                report, matrix, entries, "half-open-recovery"
            )
            closed = _wait_for(lambda: breaker.state == "closed", timeout=5.0)
        health = service.health()
        if closed and health.status == HEALTHY:
            report.breaker_recoveries += breaker.closed_total
            report.cases.append(
                ChaosCase(
                    "half-open/recovers-to-healthy", _KIND, "breaker",
                    RECOVERED,
                    f"closed after probe; health={health.status}",
                )
            )
        else:
            report.cases.append(
                ChaosCase(
                    "half-open/recovers-to-healthy", _KIND, "breaker",
                    SILENT,
                    f"breaker={breaker.state!r} health={health.status} "
                    f"({[c.kind for c in health.causes]})",
                )
            )
    if problems:
        report.cases.append(
            ChaosCase(
                "breaker-scenario/outputs", _KIND, "oracle", SILENT,
                "; ".join(problems),
            )
        )


def _run_worker_crash_scenario(
    report: ServeChaosReport, seed: int, rng: np.random.Generator, rate: float
) -> None:
    """An injected worker-thread crash: clean batch failure + restart."""
    matrix = _base_matrix(seed + 1)
    backend = _CountingBackend()
    dispatcher = AdaptiveDispatcher(
        [Backend("stable", backend.run)], plan_cache=PlanCache(), epsilon=0.0
    )
    config = ServeConfig(
        max_queue=64, max_batch=1, max_wait_ms=0.0, n_workers=1,
        restart_budget=3,
    )
    problems: "list[str]" = []
    with InferenceService(dispatcher, config) as service:
        with faults.inject(seed=seed, crash_worker=1.0) as plan:
            dense = rng.random((matrix.n_cols, _DIM))
            response = service.submit(matrix, dense).result(timeout=30.0)
        if plan.total_injected == 0:
            report.cases.append(
                ChaosCase(
                    "worker-crash/batch-fails-cleanly", _KIND, "supervisor",
                    SILENT, "fault plan injected nothing",
                )
            )
        elif response.status == "error" and "worker crashed" in (
            response.error or ""
        ):
            report.cases.append(
                ChaosCase(
                    "worker-crash/batch-fails-cleanly", _KIND, "supervisor",
                    DETECTED, response.error,
                )
            )
        else:
            report.cases.append(
                ChaosCase(
                    "worker-crash/batch-fails-cleanly", _KIND, "supervisor",
                    SILENT,
                    f"crashed batch resolved as {response.status!r} "
                    f"({response.error})",
                )
            )

        assert service._supervisor is not None
        restarted = _wait_for(
            lambda: service._supervisor.restarts >= 1
            and service._supervisor.alive_count() >= 1,
            timeout=5.0,
        )
        # The respawned worker must serve real traffic again, and with
        # the crash outside the recency window the service is HEALTHY.
        entries = _poisson_submit(service, matrix, rng, 4, rate)
        problems += _check_ok_outputs(report, matrix, entries, "post-restart")
        served = sum(
            1 for _, f in entries if f.result(timeout=30.0).ok
        )
        time.sleep(0.25)
        health = service.health(HealthPolicy(crash_recent_seconds=0.2))
        if restarted and served == 4 and health.status == HEALTHY:
            report.worker_restarts += service._supervisor.restarts
            report.cases.append(
                ChaosCase(
                    "worker-crash/supervisor-restarts", _KIND, "supervisor",
                    RECOVERED,
                    f"{service._supervisor.restarts} restart(s), "
                    f"{served}/4 served after respawn, health={health.status}",
                )
            )
        else:
            report.cases.append(
                ChaosCase(
                    "worker-crash/supervisor-restarts", _KIND, "supervisor",
                    SILENT,
                    f"restarted={restarted} served={served}/4 "
                    f"health={health.status}",
                )
            )
    if problems:
        report.cases.append(
            ChaosCase(
                "worker-crash/outputs", _KIND, "oracle", SILENT,
                "; ".join(problems),
            )
        )


def _run_executor_fault_scenario(
    report: ServeChaosReport, seed: int, rng: np.random.Generator, rate: float
) -> None:
    """Bit-flipped accumulators under live load: verified fallback only."""
    from repro.serve.dispatch import default_backends

    matrix = _base_matrix(seed + 2)
    vectorized = default_backends()[0]
    dispatcher = AdaptiveDispatcher(
        [vectorized], plan_cache=PlanCache(), epsilon=0.0
    )
    config = ServeConfig(
        max_queue=64, max_batch=2, max_wait_ms=1.0, n_workers=1, verify=True
    )
    with InferenceService(dispatcher, config) as service:
        with faults.inject(seed=seed, bitflip=1.0) as plan:
            entries = _poisson_submit(service, matrix, rng, 6, rate)
            responses = [f.result(timeout=30.0) for _, f in entries]
    fallbacks = sum(1 for r in responses if r.ok and r.fallback_used)
    mismatches = []
    for (dense, _), response in zip(entries, responses):
        if response.ok:
            report.verified_responses += 1
            if not np.allclose(
                response.output, reference_spmm(matrix, dense),
                rtol=1e-9, atol=1e-9,
            ):
                mismatches.append(response.request_id)
    if plan.total_injected == 0:
        outcome, detail = SILENT, "fault plan injected nothing"
    elif mismatches:
        outcome, detail = SILENT, f"wrong outputs accepted: {mismatches}"
    elif fallbacks == 0:
        outcome, detail = (
            SILENT,
            f"{plan.total_injected} faults injected, no fallback engaged",
        )
    else:
        outcome = RECOVERED
        detail = (
            f"{plan.total_injected} faults injected, {fallbacks}/"
            f"{len(responses)} responses degraded to the verified fallback"
        )
    report.cases.append(
        ChaosCase("bitflip/verified-fallback", _KIND, "oracle", outcome, detail)
    )


def _run_corrupt_matrix_scenario(
    report: ServeChaosReport, seed: int, rng: np.random.Generator
) -> None:
    """A NaN-valued request matrix must come back as a detected error."""
    corrupted = corruption.nan_values(_base_matrix(seed + 3), rng)
    matrix = corrupted.as_matrix()
    dispatcher = AdaptiveDispatcher(plan_cache=PlanCache(), epsilon=0.0)
    config = ServeConfig(max_queue=8, max_batch=1, max_wait_ms=0.0,
                         n_workers=1, verify=True)
    with InferenceService(dispatcher, config) as service:
        dense = rng.random((matrix.n_cols, _DIM))
        response = service.submit(matrix, dense).result(timeout=30.0)
    if response.ok:
        report.cases.append(
            ChaosCase(
                "corrupt-matrix/nan-values", _KIND, "oracle", SILENT,
                f"NaN-valued matrix served as ok via {response.backend}",
            )
        )
    else:
        report.cases.append(
            ChaosCase(
                "corrupt-matrix/nan-values", _KIND, "oracle", DETECTED,
                f"{response.status}: {response.error}",
            )
        )


def _run_deadline_scenario(
    report: ServeChaosReport, seed: int, rng: np.random.Generator
) -> None:
    """Expired deadlines are shed pre-execution, never reach a backend."""
    matrix = _base_matrix(seed + 4)
    slow = _CountingBackend(delay=0.08)
    dispatcher = AdaptiveDispatcher(
        [Backend("slow", slow.run)], plan_cache=PlanCache(), epsilon=0.0
    )
    config = ServeConfig(max_queue=64, max_batch=1, max_wait_ms=0.0,
                         n_workers=1)
    with InferenceService(dispatcher, config) as service:
        # One undeadlined request pins the single worker ...
        blocker = service.submit(matrix, rng.random((matrix.n_cols, _DIM)))
        # ... while tightly-deadlined requests expire in the queue.
        entries = [
            (dense, service.submit(matrix, dense, deadline_ms=10.0))
            for dense in (rng.random((matrix.n_cols, _DIM)) for _ in range(4))
        ]
        blocker_response = blocker.result(timeout=30.0)
        responses = [f.result(timeout=30.0) for _, f in entries]
    shed = [r for r in responses if r.deadline_exceeded]
    executed = slow.calls
    problems = []
    if not blocker_response.ok:
        problems.append(f"blocker request failed: {blocker_response.error}")
    if not shed:
        problems.append("no request was shed past its deadline")
    if any(r.output is not None for r in shed):
        problems.append("a shed response carried an output")
    # Only the blocker and any requests served before expiry may have
    # reached the backend; shed requests must not appear in the call count.
    if executed > 1 + (len(responses) - len(shed)):
        problems.append(
            f"backend executed {executed} call(s) for "
            f"{1 + len(responses) - len(shed)} non-shed request(s)"
        )
    report.deadline_shed += len(shed)
    if problems:
        report.cases.append(
            ChaosCase(
                "expired-deadline/shed-before-execution", _KIND, "deadline",
                SILENT, "; ".join(problems),
            )
        )
    else:
        report.cases.append(
            ChaosCase(
                "expired-deadline/shed-before-execution", _KIND, "deadline",
                DETECTED,
                f"{len(shed)}/4 shed unexecuted "
                f"({executed} backend call(s) total)",
            )
        )


def _run_slow_backend_scenario(
    report: ServeChaosReport, seed: int, rng: np.random.Generator
) -> None:
    """A slowed backend must surface as *kernel*-stage time, not queue.

    Submits closed-loop (one in flight at a time) so queue wait is
    negligible, then checks the flight recorder's slowest retained
    trace: the injected backend delay must land in the ``kernel`` stage
    of the attribution ledger.  This is the regression the latency
    attribution exists to localize — without per-stage ledgers a slow
    kernel and a saturated queue are indistinguishable in p95.
    """
    matrix = _base_matrix(seed + 5)
    delay = 0.05
    slow = _CountingBackend(delay=delay)
    dispatcher = AdaptiveDispatcher(
        [Backend("molasses", slow.run)], plan_cache=PlanCache(), epsilon=0.0
    )
    config = ServeConfig(max_queue=16, max_batch=1, max_wait_ms=0.0,
                         n_workers=1)
    recorder = rtrace.FlightRecorder(capacity=8)
    problems: "list[str]" = []
    with InferenceService(
        dispatcher, config, flight_recorder=recorder
    ) as service:
        for _ in range(4):
            dense = rng.random((matrix.n_cols, _DIM))
            response = service.submit(matrix, dense).result(timeout=30.0)
            if response.ok:
                report.verified_responses += 1
                if not np.allclose(
                    response.output, reference_spmm(matrix, dense),
                    rtol=1e-9, atol=1e-9,
                ):
                    problems.append(
                        f"request {response.request_id} output disagrees "
                        "with the reference"
                    )
            else:
                problems.append(
                    f"request {response.request_id} failed: {response.error}"
                )
    slowest = recorder.slowest(1)
    if not slowest:
        problems.append("flight recorder retained no completed trace")
    else:
        stages = slowest[0]["stages"]
        kernel = stages.get("kernel", 0.0)
        queue = stages.get("queue", 0.0)
        report.slow_kernel_traces += sum(
            1
            for trace in recorder.slowest()
            if trace["stages"].get("kernel", 0.0)
            > trace["stages"].get("queue", 0.0)
        )
        if kernel < delay * 0.5:
            problems.append(
                f"slowest trace attributes only {kernel * 1e3:.1f} ms to "
                f"the kernel stage despite a {delay * 1e3:.0f} ms backend "
                "delay"
            )
        elif kernel <= queue:
            problems.append(
                f"slowest trace blames the queue ({queue * 1e3:.1f} ms) "
                f"over the kernel ({kernel * 1e3:.1f} ms)"
            )
    if problems:
        report.cases.append(
            ChaosCase(
                "slow-backend/kernel-stage-attribution", _KIND, "rtrace",
                SILENT, "; ".join(problems),
            )
        )
    else:
        stages = slowest[0]["stages"]
        report.cases.append(
            ChaosCase(
                "slow-backend/kernel-stage-attribution", _KIND, "rtrace",
                DETECTED,
                f"kernel={stages.get('kernel', 0.0) * 1e3:.1f} ms > "
                f"queue={stages.get('queue', 0.0) * 1e3:.1f} ms in the "
                f"slowest of {recorder.recorded} recorded trace(s)",
            )
        )


def run_serve_chaos(seed: int = 0, rate: float = 200.0) -> ServeChaosReport:
    """Run every serving chaos scenario with a deterministic seed."""
    report = ServeChaosReport(seed=seed)
    rng = np.random.default_rng(seed)
    with obs.span("resilience.chaos_serve.run", seed=seed):
        _run_breaker_scenario(report, seed, rng, rate)
        _run_worker_crash_scenario(report, seed, rng, rate)
        _run_executor_fault_scenario(report, seed, rng, rate)
        _run_corrupt_matrix_scenario(report, seed, rng)
        _run_deadline_scenario(report, seed, rng)
        _run_slow_backend_scenario(report, seed, rng)
    obs.counter("resilience.chaos_serve.runs").inc()
    obs.gauge("resilience.chaos_serve.coverage").set(report.coverage)
    obs.counter("resilience.chaos_serve.silent_cases").inc(len(report.silent))
    return report


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point for ``python -m repro chaos-serve``."""
    parser = argparse.ArgumentParser(
        prog="repro chaos-serve",
        description=(
            "Inject faults into a live serving stack under Poisson load "
            "and verify the failure-domain guards (breakers, supervisor, "
            "deadlines, oracles) catch every one."
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="injection seed (default: 0)"
    )
    parser.add_argument(
        "--rate", type=float, default=200.0,
        help="Poisson arrival rate in requests/second (default: 200)",
    )
    parser.add_argument(
        "--bench-dir",
        default=None,
        help="run-record directory (default: benchmarks/results)",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        help="also write the full report as JSON to this path",
    )
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip writing the BENCH_chaos_serve.json run record",
    )
    args = parser.parse_args(argv)

    with obs.profiled() as session:
        report = run_serve_chaos(seed=args.seed, rate=args.rate)
    print(report.render())

    if not args.no_record:
        record = obs.run_record(
            "chaos_serve",
            metrics=session.snapshot(),
            wall_seconds=session.wall_seconds,
            status="ok" if report.passed else "silent-failures",
            extra={"chaos_serve": report.to_dict()},
        )
        path = obs.write_run_record(record, args.bench_dir)
        print(f"run record: {path}")
    if args.json_out:
        from repro.formats.io import atomic_write_text

        atomic_write_text(
            args.json_out,
            json.dumps(report.to_dict(), indent=1) + "\n",
            encoding="utf-8",
        )
        print(f"report: {args.json_out}")
    return 0 if report.passed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
