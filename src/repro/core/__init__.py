"""MergePath-SpMM: the paper's core contribution.

This package implements:

* **Algorithm 1** — the merge-path decomposition (2-D diagonal binary
  search over the CSR row-pointer array) in :mod:`repro.core.merge_path`.
* **Algorithm 2** — the parallel MergePath-SpMM kernel with explicit
  partial/complete row tracking in :mod:`repro.core.spmm`, plus the
  per-thread schedule representation in :mod:`repro.core.schedule`.
* **Section III-C** — the SIMD thread-mapping policy and merge-path cost
  selection in :mod:`repro.core.thread_mapping` and
  :mod:`repro.core.cost_tuning`.
* **Section III-D** — online/offline schedule reuse in
  :mod:`repro.core.scheduler`.
"""

from repro.core.merge_path import (
    MergeCoordinate,
    merge_path_length,
    merge_path_search,
    merge_path_splits,
)
from repro.core.schedule import (
    MergePathSchedule,
    ScheduleStatistics,
    ThreadAssignment,
    build_schedule,
    schedule_for_cost,
)
from repro.core.spmm import (
    SpMMResult,
    WriteKind,
    execute_reference,
    execute_vectorized,
    merge_path_spmm,
)
from repro.core.thread_mapping import (
    SIMD_LANES,
    ThreadMapping,
    default_merge_path_cost,
    determine_thread_count,
    map_threads_to_simd,
)
from repro.core.scheduler import ScheduleCache, SchedulingMode
from repro.core.cost_tuning import CostSweep, tune_merge_path_cost
from repro.core.parallel import ParallelResult, execute_parallel
from repro.core.analysis import (
    LoadBalanceSummary,
    compare_strategies,
    summarize_merge_path,
    work_histogram,
)

__all__ = [
    "CostSweep",
    "LoadBalanceSummary",
    "MergeCoordinate",
    "ParallelResult",
    "MergePathSchedule",
    "SIMD_LANES",
    "ScheduleCache",
    "ScheduleStatistics",
    "SchedulingMode",
    "SpMMResult",
    "ThreadAssignment",
    "ThreadMapping",
    "WriteKind",
    "build_schedule",
    "compare_strategies",
    "default_merge_path_cost",
    "determine_thread_count",
    "execute_parallel",
    "execute_reference",
    "execute_vectorized",
    "map_threads_to_simd",
    "merge_path_length",
    "merge_path_search",
    "merge_path_spmm",
    "merge_path_splits",
    "schedule_for_cost",
    "summarize_merge_path",
    "tune_merge_path_cost",
    "work_histogram",
]
