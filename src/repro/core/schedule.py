"""Per-thread MergePath-SpMM schedules and their statistics.

A :class:`MergePathSchedule` is the artifact Algorithm 1 produces and
Algorithm 2 consumes: for every thread, the merge-path coordinates of its
work range, plus the partial/complete row classification that decides which
output writes must be atomic.

The classification follows Section III-B of the paper:

* a thread's **start row** is *partial* when its start coordinate's
  non-zero index lies strictly inside the row (an earlier thread owns the
  row's first non-zeros);
* a thread's **end row** is *partial* when its end coordinate stops before
  the row's end marker (a later thread owns the rest);
* everything in between is a **complete** row, written without atomics.

Zero-length segments (a boundary that lands exactly on a row's end marker)
produce no write at all; the accounting here — and therefore Figure 5 —
counts write *operations* actually issued.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro import obs
from repro.core.merge_path import (
    merge_path_length,
    merge_path_splits,
    thread_diagonals,
)
from repro.formats import CSRMatrix


@dataclass(frozen=True)
class ThreadAssignment:
    """One thread's work assignment in the paper's variable naming.

    Attributes:
        thread: Thread index.
        start_row: First row touched (the merge-path start x-coordinate).
        end_row: Row in progress at the end coordinate.
        start_nz: Non-zero index where a *partial* start row begins, or 0
            when the start row is complete (the paper's sentinel).
        end_nz: Non-zero index where a *partial* end row stops, or 0 when
            the end row is complete.
        nnz_range: Half-open global non-zero range ``[lo, hi)`` owned by
            this thread.
    """

    thread: int
    start_row: int
    end_row: int
    start_nz: int
    end_nz: int
    nnz_range: tuple[int, int]

    @property
    def n_nonzeros(self) -> int:
        lo, hi = self.nnz_range
        return hi - lo


@dataclass(frozen=True)
class ScheduleStatistics:
    """Aggregate write/work accounting for a schedule.

    These counters drive Figure 5 (atomic vs. regular write distribution)
    and the GPU/multicore timing models.

    Attributes:
        n_threads: Number of threads in the schedule.
        n_rows: Matrix rows.
        nnz: Matrix non-zeros.
        items_per_thread: Merge-path cost bound per thread.
        atomic_writes: Output-row write operations issued atomically.
        regular_writes: Output-row write operations issued without atomics.
        atomic_nnz: Non-zeros accumulated into atomically-written outputs.
        regular_nnz: Non-zeros accumulated into regular outputs.
        split_rows: Distinct rows whose output receives atomic updates.
        single_partial_threads: Threads whose whole assignment is one
            partial row (middle chunks of evil rows).
        max_thread_items: Largest per-thread merge-item count (load bound).
    """

    n_threads: int
    n_rows: int
    nnz: int
    items_per_thread: int
    atomic_writes: int
    regular_writes: int
    atomic_nnz: int
    regular_nnz: int
    split_rows: int
    single_partial_threads: int
    max_thread_items: int

    @property
    def total_writes(self) -> int:
        return self.atomic_writes + self.regular_writes

    @property
    def atomic_write_fraction(self) -> float:
        """Fraction of write operations that are atomic (Figure 5 y-axis)."""
        total = self.total_writes
        return self.atomic_writes / total if total else 0.0

    @property
    def atomic_nnz_fraction(self) -> float:
        """Fraction of non-zeros accumulated through atomic writes."""
        return self.atomic_nnz / self.nnz if self.nnz else 0.0


class MergePathSchedule:
    """A complete merge-path work decomposition of one CSR matrix.

    Construction is fully vectorized; all per-thread classification arrays
    are computed once and shared by the executors and timing models.

    Args:
        matrix: The sparse input matrix (the paper's *A*).
        n_threads: Number of threads to decompose across.
    """

    def __init__(self, matrix: CSRMatrix, n_threads: int) -> None:
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        with obs.span(
            "core.schedule.build", n_threads=n_threads, nnz=matrix.nnz
        ):
            self.matrix = matrix
            self.n_threads = n_threads
            self.diagonals = thread_diagonals(matrix, n_threads)
            total = merge_path_length(matrix)
            self.items_per_thread = -(-total // n_threads) if total else 0
            coords = merge_path_splits(matrix, self.diagonals)
            # Boundary coordinates: thread t spans coords[t] .. coords[t + 1].
            self.start_rows = coords[:-1, 0]
            self.start_nnzs = coords[:-1, 1]
            self.end_rows = coords[1:, 0]
            self.end_nnzs = coords[1:, 1]
            self._classify()

    # ------------------------------------------------------------------
    # Classification (Section III-B)
    # ------------------------------------------------------------------
    def _classify(self) -> None:
        rp = self.matrix.row_pointers
        n = self.matrix.n_rows
        x0, y0 = self.start_rows, self.start_nnzs
        x1, y1 = self.end_rows, self.end_nnzs

        in_rows0 = x0 < n
        in_rows1 = x1 < n
        # Row start/end offsets, guarded for threads landing past row n-1.
        row0_start = rp[np.minimum(x0, n - 1 if n else 0)] if n else y0
        row0_end = rp[np.minimum(x0 + 1, n)] if n else y0
        row1_start = rp[np.minimum(x1, n - 1 if n else 0)] if n else y1

        started_mid_row = in_rows0 & (y0 > row0_start)
        # Non-empty leading segment of a partial start row.
        start_segment_end = np.minimum(row0_end, y1)
        self.start_partial = started_mid_row & (y0 < start_segment_end)
        self.single_partial = self.start_partial & (x0 == x1)
        multi_start = self.start_partial & (x0 < x1)
        # Non-empty trailing segment of a partial end row.  This also covers
        # a thread that begins a row at its first non-zero but does not
        # reach its end marker.
        end_segment_start = np.maximum(row1_start, y0)
        self.end_partial = (
            in_rows1 & (y1 > end_segment_start) & ~self.single_partial
        )

        # Complete rows: skip the start row whenever an earlier thread owns
        # part of it (even if this thread's remaining segment is empty).
        first_complete = x0 + started_mid_row.astype(np.int64)
        self.complete_counts = np.maximum(0, x1 - first_complete)
        self.first_complete_rows = first_complete

        self.atomic_nnz_per_thread = (
            np.where(self.single_partial, y1 - y0, 0)
            + np.where(multi_start, row0_end - y0, 0)
            + np.where(self.end_partial, y1 - end_segment_start, 0)
        )
        self.atomic_writes_per_thread = (
            self.start_partial.astype(np.int64) + self.end_partial
        )
        if obs.enabled():
            obs.counter("core.schedule.built").inc()
            obs.counter("core.schedule.threads").inc(self.n_threads)
            obs.counter("core.schedule.atomic_writes").inc(
                int(self.atomic_writes_per_thread.sum())
            )
            obs.counter("core.schedule.regular_writes").inc(
                int(self.complete_counts.sum())
            )
            obs.counter("core.schedule.partial_start_rows").inc(
                int(self.start_partial.sum())
            )
            obs.counter("core.schedule.partial_end_rows").inc(
                int(self.end_partial.sum())
            )
            obs.counter("core.schedule.single_partial_threads").inc(
                int(self.single_partial.sum())
            )

    # ------------------------------------------------------------------
    # Rebinding
    # ------------------------------------------------------------------
    def rebind(self, matrix: CSRMatrix) -> "MergePathSchedule":
        """This schedule bound to ``matrix``'s values.

        A merge-path decomposition is a function of the CSR *structure*
        alone, so content-keyed caches share one schedule between
        matrices that differ only in their non-zero values.  Executors,
        however, read ``schedule.matrix.values`` — handing them a cached
        schedule built from a different same-structure matrix would
        silently compute with the wrong values.  ``rebind`` closes that
        gap: it returns ``self`` when ``matrix`` already carries the same
        values, and otherwise a shallow copy sharing every schedule array
        but bound to the caller's matrix.

        Raises:
            ValueError: If ``matrix`` differs structurally from the
                matrix this schedule was built for.
        """
        if matrix is self.matrix:
            return self
        if matrix.fingerprint() != self.matrix.fingerprint():
            raise ValueError(
                "cannot rebind a schedule across structurally different "
                f"matrices ({self.matrix.shape} vs {matrix.shape})"
            )
        if matrix.fingerprint(include_values=True) == self.matrix.fingerprint(
            include_values=True
        ):
            return self
        rebound = copy.copy(self)
        rebound.matrix = matrix
        return rebound

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def assignment(self, thread: int) -> ThreadAssignment:
        """The paper-style :class:`ThreadAssignment` for one thread."""
        if not 0 <= thread < self.n_threads:
            raise IndexError(
                f"thread {thread} out of range [0, {self.n_threads})"
            )
        start_partial = bool(self.start_partial[thread]) or (
            # The paper's start_nz flags any mid-row start, including one
            # whose remaining segment is empty.
            self.start_rows[thread] < self.matrix.n_rows
            and self.start_nnzs[thread]
            > self.matrix.row_pointers[self.start_rows[thread]]
        )
        end_partial = bool(self.end_partial[thread])
        return ThreadAssignment(
            thread=thread,
            start_row=int(self.start_rows[thread]),
            end_row=int(self.end_rows[thread]),
            start_nz=int(self.start_nnzs[thread]) if start_partial else 0,
            end_nz=int(self.end_nnzs[thread]) if end_partial else 0,
            nnz_range=(int(self.start_nnzs[thread]), int(self.end_nnzs[thread])),
        )

    def assignments(self) -> list[ThreadAssignment]:
        """All per-thread assignments (scalar view; prefer arrays in bulk)."""
        return [self.assignment(t) for t in range(self.n_threads)]

    def atomic_row_targets(self) -> np.ndarray:
        """Row index targeted by every atomic write, one entry per write.

        Used by the GPU model to estimate atomic contention: duplicated
        entries are concurrent writers serializing on the same output row.
        """
        starts = self.start_rows[self.start_partial]
        ends = self.end_rows[self.end_partial]
        return np.concatenate([starts, ends])

    def per_thread_nnz(self) -> np.ndarray:
        """Non-zeros owned by each thread."""
        return self.end_nnzs - self.start_nnzs

    def per_thread_items(self) -> np.ndarray:
        """Merge items (rows + non-zeros) owned by each thread."""
        return np.diff(self.diagonals)

    @cached_property
    def statistics(self) -> ScheduleStatistics:
        """Aggregate :class:`ScheduleStatistics` (cached)."""
        atomic_nnz = int(self.atomic_nnz_per_thread.sum())
        atomic_writes = int(self.atomic_writes_per_thread.sum())
        targets = self.atomic_row_targets()
        return ScheduleStatistics(
            n_threads=self.n_threads,
            n_rows=self.matrix.n_rows,
            nnz=self.matrix.nnz,
            items_per_thread=self.items_per_thread,
            atomic_writes=atomic_writes,
            regular_writes=int(self.complete_counts.sum()),
            atomic_nnz=atomic_nnz,
            regular_nnz=self.matrix.nnz - atomic_nnz,
            split_rows=len(np.unique(targets)),
            single_partial_threads=int(self.single_partial.sum()),
            max_thread_items=int(self.per_thread_items().max(initial=0)),
        )

    def validate(self) -> None:
        """Assert the tiling invariants; raise ``AssertionError`` otherwise.

        Checked invariants (the merge-path load-balance guarantees):

        * thread non-zero ranges tile ``[0, nnz)`` exactly;
        * per-thread merge items never exceed the merge-path cost;
        * every row is either one thread's complete row or receives only
          atomic writes (never both), and all rows are covered.
        """
        assert self.start_nnzs[0] == 0 and self.start_rows[0] == 0
        assert self.end_nnzs[-1] == self.matrix.nnz
        assert self.end_rows[-1] == self.matrix.n_rows
        assert np.array_equal(self.start_nnzs[1:], self.end_nnzs[:-1])
        assert np.array_equal(self.start_rows[1:], self.end_rows[:-1])
        assert self.per_thread_items().max(initial=0) <= self.items_per_thread
        # Row coverage: complete rows and atomic targets partition the rows.
        complete_rows: list[np.ndarray] = []
        for t in range(self.n_threads):
            complete_rows.append(
                np.arange(
                    self.first_complete_rows[t],
                    self.first_complete_rows[t] + self.complete_counts[t],
                )
            )
        complete = np.concatenate(complete_rows) if complete_rows else np.empty(0)
        atomic = np.unique(self.atomic_row_targets())
        assert len(np.unique(complete)) == len(complete), "duplicate complete rows"
        assert not np.intersect1d(complete, atomic).size, (
            "row written both regularly and atomically"
        )
        covered = np.union1d(complete, atomic)
        assert len(covered) == self.matrix.n_rows, (
            f"covered {len(covered)} of {self.matrix.n_rows} rows"
        )
        # Atomic + regular nnz accounting matches the matrix.
        stats = self.statistics
        assert stats.atomic_nnz + stats.regular_nnz == self.matrix.nnz


@obs.instrumented
def build_schedule(matrix: CSRMatrix, n_threads: int) -> MergePathSchedule:
    """Decompose ``matrix`` across ``n_threads`` threads (Algorithm 1)."""
    return MergePathSchedule(matrix, n_threads)


@obs.instrumented
def schedule_for_cost(
    matrix: CSRMatrix,
    cost: int,
    min_threads: int | None = None,
) -> MergePathSchedule:
    """Build a schedule targeting ``cost`` merge items per thread.

    This is the paper's tunable *merge-path cost* knob (Section III-C):
    the thread count is the merge-path length divided by the cost.  When
    the computed count falls below ``min_threads`` (the paper uses a
    1024-thread threshold to keep small graphs parallel), the thread count
    is raised to the threshold instead.
    """
    if cost < 1:
        raise ValueError(f"merge-path cost must be >= 1, got {cost}")
    total = merge_path_length(matrix)
    n_threads = max(1, -(-total // cost))
    if min_threads is not None and n_threads < min_threads:
        n_threads = min_threads
    # More threads than merge items just produces empty threads; cap so the
    # schedule stays well-formed on tiny inputs.
    n_threads = max(1, min(n_threads, total)) if total else 1
    return MergePathSchedule(matrix, n_threads)
