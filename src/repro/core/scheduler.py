"""Online versus offline schedule management (Section III-D).

A MergePath-SpMM schedule depends only on the sparse matrix, so when the
adjacency matrix is stationary across inferences the schedule is computed
once and reused (*offline*).  When the graph evolves — or a new graph
arrives per inference — the schedule must be recomputed every time
(*online*), and its cost shows up as the scheduling overhead the paper
quantifies in Figure 8.

:class:`ScheduleCache` implements both modes and records wall-clock
scheduling time; the *modeled* (GPU-cycle) scheduling overhead used by the
Figure 8 harness is produced by :func:`repro.gpu.timing.scheduling_cycles`.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field

from repro import obs
from repro.core.schedule import MergePathSchedule, schedule_for_cost
from repro.core.thread_mapping import MIN_THREADS
from repro.formats import CSRMatrix


class SchedulingMode(enum.Enum):
    """When schedules are (re)computed."""

    OFFLINE = "offline"
    ONLINE = "online"


@dataclass
class ScheduleCache:
    """Schedule provider implementing the paper's two execution models.

    In ``OFFLINE`` mode, schedules are computed once per
    ``(matrix identity, cost, min_threads)`` and reused; in ``ONLINE``
    mode every request recomputes the schedule, as required when the
    adjacency matrix changes between inferences.

    Attributes:
        mode: Scheduling mode.
        schedule_computations: Number of schedule builds performed.
        total_scheduling_seconds: Wall-clock time spent building schedules.
    """

    mode: SchedulingMode = SchedulingMode.OFFLINE
    schedule_computations: int = 0
    total_scheduling_seconds: float = 0.0
    _cache: dict[tuple[int, int, int], MergePathSchedule] = field(
        default_factory=dict, repr=False
    )

    def get(
        self,
        matrix: CSRMatrix,
        cost: int,
        min_threads: int = MIN_THREADS,
    ) -> MergePathSchedule:
        """Return a schedule for ``matrix``, computing it at most once.

        Online execution is realized by the caller clearing the cache at
        every inference boundary (the paper's online setting computes the
        schedule once per inference and reuses it across that inference's
        kernel invocations); offline callers never clear, so the schedule
        survives across inferences.
        """
        key = (id(matrix), cost, min_threads)
        if key in self._cache:
            obs.counter("core.scheduler.cache_hits").inc()
            return self._cache[key]
        obs.counter("core.scheduler.cache_misses").inc()
        started = time.perf_counter()
        schedule = schedule_for_cost(matrix, cost, min_threads=min_threads)
        self.total_scheduling_seconds += time.perf_counter() - started
        self.schedule_computations += 1
        self._cache[key] = schedule
        return schedule

    def clear(self) -> None:
        """Drop all cached schedules and reset counters."""
        self._cache.clear()
        self.schedule_computations = 0
        self.total_scheduling_seconds = 0.0
