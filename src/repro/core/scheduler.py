"""Online versus offline schedule management (Section III-D).

A MergePath-SpMM schedule depends only on the sparse matrix, so when the
adjacency matrix is stationary across inferences the schedule is computed
once and reused (*offline*).  When the graph evolves — or a new graph
arrives per inference — the schedule must be recomputed every time
(*online*), and its cost shows up as the scheduling overhead the paper
quantifies in Figure 8.

:class:`ScheduleCache` implements both modes and records wall-clock
scheduling time; the *modeled* (GPU-cycle) scheduling overhead used by the
Figure 8 harness is produced by :func:`repro.gpu.timing.scheduling_cycles`.
Entries are keyed on :meth:`CSRMatrix.fingerprint` — a content hash of the
CSR structure — so identical graphs loaded twice share one schedule and a
garbage-collected matrix can never alias a live one, and the cache is
safe to hit from the serving layer's concurrent workers
(:mod:`repro.serve`).  A hit from a same-structure matrix with
*different values* is rebound to the requesting matrix
(:meth:`MergePathSchedule.rebind`), so executors always compute with the
caller's values while the schedule arrays stay shared.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro import obs
from repro.core.schedule import MergePathSchedule, schedule_for_cost
from repro.core.thread_mapping import MIN_THREADS
from repro.formats import CSRMatrix


class SchedulingMode(enum.Enum):
    """When schedules are (re)computed."""

    OFFLINE = "offline"
    ONLINE = "online"


@dataclass
class ScheduleCache:
    """Schedule provider implementing the paper's two execution models.

    In ``OFFLINE`` mode, schedules are computed once per
    ``(matrix fingerprint, cost, min_threads)`` and reused; in ``ONLINE``
    mode every request recomputes the schedule, as required when the
    adjacency matrix changes between inferences.

    The cache is thread-safe (schedule builds run under the cache lock,
    so a key is computed at most once even under concurrent access) and
    LRU-bounded by ``max_entries``.

    Attributes:
        mode: Scheduling mode.
        max_entries: LRU capacity; ``None`` means unbounded.
        schedule_computations: Number of schedule builds performed.
        total_scheduling_seconds: Wall-clock time spent building schedules.
        evictions: Entries dropped to honor ``max_entries``.
    """

    mode: SchedulingMode = SchedulingMode.OFFLINE
    max_entries: "int | None" = 256
    schedule_computations: int = 0
    total_scheduling_seconds: float = 0.0
    evictions: int = 0
    _cache: "OrderedDict[tuple[str, int, int], MergePathSchedule]" = field(
        default_factory=OrderedDict, repr=False, compare=False
    )
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.max_entries is not None and self.max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1 or None, got {self.max_entries}"
            )

    def get(
        self,
        matrix: CSRMatrix,
        cost: int,
        min_threads: int = MIN_THREADS,
    ) -> MergePathSchedule:
        """Return a schedule for ``matrix``, computing it at most once.

        Online execution is realized by the caller clearing the cache at
        every inference boundary (the paper's online setting computes the
        schedule once per inference and reuses it across that inference's
        kernel invocations); offline callers never clear, so the schedule
        survives across inferences.
        """
        key = (matrix.fingerprint(), cost, min_threads)
        with self._lock:
            schedule = self._cache.get(key)
            if schedule is not None:
                self._cache.move_to_end(key)
                obs.counter("core.scheduler.cache_hits").inc()
                # The cached schedule may have been built from a
                # same-structure matrix with different values; rebind so
                # executors compute with the *caller's* values.
                return schedule.rebind(matrix)
            obs.counter("core.scheduler.cache_misses").inc()
            started = time.perf_counter()
            schedule = schedule_for_cost(matrix, cost, min_threads=min_threads)
            self.total_scheduling_seconds += time.perf_counter() - started
            self.schedule_computations += 1
            self._cache[key] = schedule
            while (
                self.max_entries is not None
                and len(self._cache) > self.max_entries
            ):
                self._cache.popitem(last=False)
                self.evictions += 1
                obs.counter("core.scheduler.cache_evictions").inc()
            return schedule

    @property
    def entries(self) -> int:
        """Number of schedules currently cached."""
        with self._lock:
            return len(self._cache)

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every schedule keyed by ``fingerprint``; returns the count.

        This is the epoch-retirement hook
        (:class:`repro.serve.epoch.GraphEpochManager`): fingerprints are
        version-precise for live graphs, so dropping one epoch's keys
        never touches schedules other epochs still execute against —
        precise invalidation, no global flush.
        """
        with self._lock:
            stale = [key for key in self._cache if key[0] == fingerprint]
            for key in stale:
                del self._cache[key]
            if stale:
                obs.counter("core.scheduler.cache_invalidations").inc(
                    len(stale)
                )
            return len(stale)

    def clear(self) -> None:
        """Drop all cached schedules and reset counters."""
        with self._lock:
            self._cache.clear()
            self.schedule_computations = 0
            self.total_scheduling_seconds = 0.0
            self.evictions = 0
