"""MergePath-SpMM execution (Algorithm 2 of the paper).

Two executors compute ``C = A @ XW`` from a :class:`MergePathSchedule`:

* :func:`execute_reference` — a literal, per-thread transcription of the
  paper's Algorithm 2 (thread-local accumulators ``T[0]``/``T[1]``, atomic
  adds for partial rows, direct stores for complete rows).  It is the
  fidelity anchor for tests and runs in Python loops.
* :func:`execute_vectorized` — the production path.  It materializes the
  schedule's *write segments* (each output write operation's contiguous
  non-zero range and target row), accumulates per-segment partial sums
  with chunked scatter-adds, then applies regular segments with direct
  stores and atomic segments with accumulating adds.  Its write-operation
  counts equal the schedule statistics by construction.

Both executors return the same output and the same
:class:`WriteAccounting`; tests assert this bit-for-bit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.schedule import (
    MergePathSchedule,
    schedule_for_cost,
)
from repro.core.thread_mapping import default_merge_path_cost
from repro.formats import CSRMatrix
from repro.resilience import faults

# Non-zeros processed per scatter chunk; bounds peak temporary memory at
# roughly ``chunk * dim * 8`` bytes regardless of matrix size.
_CHUNK_NNZ = 1 << 20


class WriteKind(enum.Enum):
    """How an output row update is performed."""

    ATOMIC = "atomic"
    REGULAR = "regular"


@dataclass(frozen=True)
class WriteAccounting:
    """Observed output-write operations during an execution."""

    atomic_writes: int
    regular_writes: int
    atomic_nnz: int
    regular_nnz: int


@dataclass(frozen=True)
class WriteSegments:
    """The schedule's write operations as flat arrays.

    Each entry describes one output write: the contiguous non-zero range
    ``[start, start + length)`` it accumulates and the output row it
    targets.  Non-empty segments tile ``[0, nnz)`` in order.
    """

    starts: np.ndarray
    lengths: np.ndarray
    rows: np.ndarray
    atomic: np.ndarray

    @property
    def n_segments(self) -> int:
        return len(self.starts)


def _multi_arange(firsts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(f, f + c)`` for each pair, vectorized."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    repeats = np.repeat(firsts, counts)
    offsets = np.arange(total) - np.repeat(
        np.concatenate(([0], np.cumsum(counts)[:-1])), counts
    )
    return repeats + offsets


def write_segments(schedule: MergePathSchedule) -> WriteSegments:
    """Flatten a schedule into its ordered output-write segments."""
    rp = schedule.matrix.row_pointers
    n = schedule.matrix.n_rows
    x0, y0 = schedule.start_rows, schedule.start_nnzs
    x1, y1 = schedule.end_rows, schedule.end_nnzs

    # Partial start segments: [y0, min(RP[x0 + 1], y1)) targeting row x0.
    sp = schedule.start_partial
    sp_rows = x0[sp]
    sp_starts = y0[sp]
    sp_ends = np.minimum(rp[np.minimum(sp_rows + 1, n)], y1[sp])

    # Partial end segments: [max(RP[x1], y0), y1) targeting row x1.
    ep = schedule.end_partial
    ep_rows = x1[ep]
    ep_starts = np.maximum(rp[np.minimum(ep_rows, max(n - 1, 0))], y0[ep])
    ep_ends = y1[ep]

    # Complete row segments: [RP[r], RP[r + 1]) for each complete row r.
    complete_rows = _multi_arange(
        schedule.first_complete_rows, schedule.complete_counts
    )
    cr_starts = rp[complete_rows]
    cr_ends = rp[complete_rows + 1]

    starts = np.concatenate([sp_starts, ep_starts, cr_starts])
    ends = np.concatenate([sp_ends, ep_ends, cr_ends])
    rows = np.concatenate([sp_rows, ep_rows, complete_rows])
    atomic = np.concatenate(
        [
            np.ones(len(sp_rows), dtype=bool),
            np.ones(len(ep_rows), dtype=bool),
            np.zeros(len(complete_rows), dtype=bool),
        ]
    )
    order = np.argsort(starts, kind="stable")
    return WriteSegments(
        starts=starts[order],
        lengths=(ends - starts)[order],
        rows=rows[order],
        atomic=atomic[order],
    )


@dataclass(frozen=True)
class SpMMResult:
    """Output of a MergePath-SpMM invocation.

    Attributes:
        output: The dense product ``A @ XW``.
        schedule: The merge-path schedule that produced it.
        writes: Observed write accounting (matches the schedule's
            statistics).
    """

    output: np.ndarray
    schedule: MergePathSchedule
    writes: WriteAccounting


def _inject_segment_faults(
    plan: "faults.FaultPlan",
    seg_sums: np.ndarray,
    segments: WriteSegments,
) -> np.ndarray:
    """Apply the active fault plan to per-segment accumulators.

    Mutates ``seg_sums`` in place (failed unit zeroed, accumulator bits
    flipped) and returns the mask of atomic segments whose application is
    dropped.  Injections are only counted when they actually change the
    output (a dropped all-zero update is unobservable by construction).
    """
    dropped = np.zeros(segments.n_segments, dtype=bool)
    if segments.n_segments == 0:
        return dropped
    if plan.fail_unit is not None:
        idx = plan.fail_unit % segments.n_segments
        if np.any(seg_sums[idx]):
            seg_sums[idx] = 0.0
            plan.note_injected("fail_unit")
    if plan.bitflip > 0.0:
        for i in range(segments.n_segments):
            if plan.rng.random() < plan.bitflip:
                nz = np.flatnonzero(seg_sums[i])
                if len(nz):
                    faults.flip_mantissa_bit(seg_sums[i], int(nz[0]))
                    plan.note_injected("bitflip")
    if plan.drop_atomic > 0.0:
        for i in np.flatnonzero(segments.atomic):
            if plan.rng.random() < plan.drop_atomic and np.any(seg_sums[i]):
                dropped[i] = True
                plan.note_injected("drop_atomic")
    return dropped


def _record_writes(accounting: "WriteAccounting") -> None:
    """Publish an execution's observed write counts to the obs layer."""
    if obs.enabled():
        obs.counter("core.executor.atomic_writes").inc(accounting.atomic_writes)
        obs.counter("core.executor.regular_writes").inc(
            accounting.regular_writes
        )
        obs.counter("core.executor.atomic_nnz").inc(accounting.atomic_nnz)
        obs.counter("core.executor.regular_nnz").inc(accounting.regular_nnz)


# ----------------------------------------------------------------------
# Reference executor: literal Algorithm 2
# ----------------------------------------------------------------------
@obs.instrumented
def execute_reference(
    schedule: MergePathSchedule, dense: np.ndarray
) -> tuple[np.ndarray, WriteAccounting]:
    """Execute Algorithm 2 thread by thread, literally.

    Every thread follows the paper's control flow: a possible partial
    start row accumulated into the thread-local ``T[0]`` and added
    atomically; a possible partial end row into ``T[1]``, added
    atomically; complete rows stored directly.  (Running threads
    sequentially is sound because atomic adds commute.)

    Args:
        schedule: Merge-path schedule for the sparse input.
        dense: The dense ``XW`` operand.

    Returns:
        ``(output, accounting)``.
    """
    matrix = schedule.matrix
    dense = np.asarray(dense, dtype=np.float64)
    if dense.shape[0] != matrix.n_cols:
        raise ValueError(f"dimension mismatch: {matrix.shape} @ {dense.shape}")
    rp, cp, values = matrix.row_pointers, matrix.column_indices, matrix.values
    output = np.zeros((matrix.n_rows, dense.shape[1]), dtype=np.float64)
    atomic_writes = regular_writes = atomic_nnz = regular_nnz = 0
    plan = faults.active_plan()
    fail_thread = (
        plan.fail_unit % schedule.n_threads
        if plan is not None and plan.fail_unit is not None
        else None
    )

    def row_product(lo: int, hi: int) -> np.ndarray:
        """Sum of ``A[row, CP[j]] * XW[CP[j], :]`` over ``j`` in [lo, hi)."""
        product = values[lo:hi] @ dense[cp[lo:hi]]
        if plan is not None and plan.bitflip > 0.0:
            if plan.rng.random() < plan.bitflip:
                nz = np.flatnonzero(product)
                if len(nz):
                    faults.flip_mantissa_bit(product, int(nz[0]))
                    plan.note_injected("bitflip")
        return product

    def atomic_dropped(product: np.ndarray) -> bool:
        """Whether the fault plan swallows this atomic update."""
        if plan is None or plan.drop_atomic <= 0.0:
            return False
        if plan.rng.random() < plan.drop_atomic and np.any(product):
            plan.note_injected("drop_atomic")
            return True
        return False

    for t in range(schedule.n_threads):
        start_row = int(schedule.start_rows[t])
        end_row = int(schedule.end_rows[t])
        start_nz = int(schedule.start_nnzs[t])
        end_nz = int(schedule.end_nnzs[t])

        if t == fail_thread and end_nz > start_nz:
            # This unit halted before doing any work; its output
            # contribution silently vanishes (self-checks must catch it).
            if np.any(values[start_nz:end_nz]):
                plan.note_injected("fail_unit")
                continue

        if start_row < matrix.n_rows and start_nz > rp[start_row]:
            # Partial start row (Algorithm 2, line 2).
            if start_row == end_row:
                # The whole assignment is one partial row (lines 3-6).
                if end_nz > start_nz:
                    product = row_product(start_nz, end_nz)
                    if not atomic_dropped(product):
                        output[start_row] += product  # atomic
                    atomic_writes += 1
                    atomic_nnz += end_nz - start_nz
                continue
            # Finish the partial start row, then move on (lines 8-10).
            segment_end = int(rp[start_row + 1])
            if segment_end > start_nz:
                product = row_product(start_nz, segment_end)
                if not atomic_dropped(product):
                    output[start_row] += product  # atomic
                atomic_writes += 1
                atomic_nnz += segment_end - start_nz
            start_row += 1

        if end_row < matrix.n_rows and end_nz > rp[end_row]:
            # Partial end row (lines 11-13).
            segment_start = max(int(rp[end_row]), start_nz)
            if end_nz > segment_start:
                product = row_product(segment_start, end_nz)
                if not atomic_dropped(product):
                    output[end_row] += product  # atomic
                atomic_writes += 1
                atomic_nnz += end_nz - segment_start

        # Complete rows in [start_row, end_row): direct stores (lines 14-15).
        for row in range(start_row, end_row):
            lo, hi = int(rp[row]), int(rp[row + 1])
            output[row] = row_product(lo, hi)
            regular_writes += 1
            regular_nnz += hi - lo

    accounting = WriteAccounting(
        atomic_writes=atomic_writes,
        regular_writes=regular_writes,
        atomic_nnz=atomic_nnz,
        regular_nnz=regular_nnz,
    )
    _record_writes(accounting)
    return output, accounting


# ----------------------------------------------------------------------
# Vectorized executor: segment scatter-adds
# ----------------------------------------------------------------------
@obs.instrumented
def execute_vectorized(
    schedule: MergePathSchedule, dense: np.ndarray
) -> tuple[np.ndarray, WriteAccounting]:
    """Execute the schedule with chunked vectorized segment sums.

    Equivalent to :func:`execute_reference` (tests assert equality) but
    processes non-zeros in bulk: partial products are accumulated per
    write segment, then each segment is applied to the output with the
    write kind the schedule dictates.

    Args:
        schedule: Merge-path schedule for the sparse input.
        dense: The dense ``XW`` operand.

    Returns:
        ``(output, accounting)``.
    """
    matrix = schedule.matrix
    dense = np.asarray(dense, dtype=np.float64)
    if dense.shape[0] != matrix.n_cols:
        raise ValueError(f"dimension mismatch: {matrix.shape} @ {dense.shape}")
    segments = write_segments(schedule)
    dim = dense.shape[1]
    seg_sums = np.zeros((segments.n_segments, dim), dtype=np.float64)
    # Segment id of every non-zero (non-empty segments tile [0, nnz)).
    seg_ids = np.repeat(np.arange(segments.n_segments), segments.lengths)
    cp, values = matrix.column_indices, matrix.values
    for lo in range(0, matrix.nnz, _CHUNK_NNZ):
        hi = min(lo + _CHUNK_NNZ, matrix.nnz)
        partial = values[lo:hi, None] * dense[cp[lo:hi]]
        np.add.at(seg_sums, seg_ids[lo:hi], partial)

    plan = faults.active_plan()
    atomic_applied = segments.atomic
    if plan is not None:
        dropped = _inject_segment_faults(plan, seg_sums, segments)
        atomic_applied = segments.atomic & ~dropped

    output = np.zeros((matrix.n_rows, dim), dtype=np.float64)
    regular = ~segments.atomic
    # Complete rows are owned by exactly one segment: direct store.
    output[segments.rows[regular]] = seg_sums[regular]
    # Partial rows accumulate from multiple segments: atomic adds.
    np.add.at(output, segments.rows[atomic_applied], seg_sums[atomic_applied])

    accounting = WriteAccounting(
        atomic_writes=int(segments.atomic.sum()),
        regular_writes=int(regular.sum()),
        atomic_nnz=int(segments.lengths[segments.atomic].sum()),
        regular_nnz=int(segments.lengths[regular].sum()),
    )
    _record_writes(accounting)
    return output, accounting


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
@obs.instrumented
def merge_path_spmm(
    matrix: CSRMatrix,
    dense: np.ndarray,
    *,
    cost: int | None = None,
    n_threads: int | None = None,
    min_threads: int = 1024,
    executor: str = "vectorized",
) -> SpMMResult:
    """Compute ``matrix @ dense`` with the MergePath-SpMM algorithm.

    Args:
        matrix: Sparse CSR input (the paper's adjacency matrix *A*).
        dense: Dense operand (the paper's *XW*), shape ``(n_cols, dim)``.
        cost: Merge-path cost (merge items per thread).  Defaults to the
            paper's empirically tuned value for ``dim`` (Figure 6).
        n_threads: Explicit thread count; overrides ``cost`` when given.
        min_threads: Minimum spawned threads for small graphs (Section
            III-C uses a 1024-thread threshold).
        executor: ``"vectorized"`` (default) or ``"reference"`` (literal
            Algorithm 2, for validation; slow on large inputs).

    Returns:
        An :class:`SpMMResult` with the product, the schedule, and the
        observed write accounting.
    """
    dense = np.asarray(dense, dtype=np.float64)
    if dense.ndim != 2:
        raise ValueError(f"dense operand must be 2-D, got shape {dense.shape}")
    if n_threads is not None:
        schedule = MergePathSchedule(matrix, n_threads)
    else:
        if cost is None:
            cost = default_merge_path_cost(dense.shape[1])
        schedule = schedule_for_cost(matrix, cost, min_threads=min_threads)
    if executor == "vectorized":
        output, accounting = execute_vectorized(schedule, dense)
    elif executor == "reference":
        output, accounting = execute_reference(schedule, dense)
    else:
        raise ValueError(f"unknown executor {executor!r}")
    return SpMMResult(output=output, schedule=schedule, writes=accounting)
