"""A real multi-threaded CPU executor for MergePath-SpMM.

The GPU results in this reproduction are modeled, but the algorithm
itself is a general parallel decomposition — this module runs it with
actual OS threads on the host CPU.  NumPy releases the GIL inside its
kernels, so the workers' segment computations genuinely overlap.

Semantics mirror Algorithm 2 exactly:

* every worker owns a contiguous block of merge-path threads and computes
  its write segments' partial sums locally;
* complete-row segments are stored without synchronization (each row has
  exactly one owner);
* partial-row segments are accumulated under striped locks — the CPU
  equivalent of the GPU's atomic adds.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.schedule import MergePathSchedule
from repro.core.spmm import WriteAccounting, write_segments
from repro.formats import CSRMatrix

_N_LOCK_STRIPES = 64


@dataclass(frozen=True)
class ParallelResult:
    """Output of a parallel execution.

    Attributes:
        output: The dense product.
        writes: Write accounting (identical to the serial executors').
        n_workers: OS threads used.
    """

    output: np.ndarray
    writes: WriteAccounting
    n_workers: int


@obs.instrumented
def execute_parallel(
    schedule: MergePathSchedule,
    dense: np.ndarray,
    n_workers: int = 4,
) -> ParallelResult:
    """Execute a merge-path schedule with real OS threads.

    Args:
        schedule: The merge-path decomposition.
        dense: Dense operand ``XW``.
        n_workers: Worker threads (each takes a contiguous slice of the
            schedule's write segments).

    Returns:
        A :class:`ParallelResult`; the product equals the serial
        executors' bit for bit (floating-point addition order within each
        segment is identical; cross-segment adds commute over disjoint
        buffers under the striped locks).
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    matrix: CSRMatrix = schedule.matrix
    dense = np.asarray(dense, dtype=np.float64)
    if dense.shape[0] != matrix.n_cols:
        raise ValueError(f"dimension mismatch: {matrix.shape} @ {dense.shape}")
    segments = write_segments(schedule)
    dim = dense.shape[1]
    output = np.zeros((matrix.n_rows, dim), dtype=np.float64)
    locks = [threading.Lock() for _ in range(_N_LOCK_STRIPES)]
    cp, values = matrix.column_indices, matrix.values

    bounds = np.linspace(0, segments.n_segments, n_workers + 1).astype(int)

    def worker(lo: int, hi: int) -> None:
        for i in range(lo, hi):
            start = int(segments.starts[i])
            end = start + int(segments.lengths[i])
            row = int(segments.rows[i])
            partial = (
                values[start:end] @ dense[cp[start:end]]
                if end > start
                else np.zeros(dim)
            )
            if segments.atomic[i]:
                with locks[row % _N_LOCK_STRIPES]:  # the "atomic" add
                    output[row] += partial
            else:
                output[row] = partial

    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        futures = [
            pool.submit(worker, bounds[w], bounds[w + 1])
            for w in range(n_workers)
        ]
        for future in futures:
            future.result()  # propagate worker exceptions

    atomic_mask = segments.atomic
    accounting = WriteAccounting(
        atomic_writes=int(atomic_mask.sum()),
        regular_writes=int((~atomic_mask).sum()),
        atomic_nnz=int(segments.lengths[atomic_mask].sum()),
        regular_nnz=int(segments.lengths[~atomic_mask].sum()),
    )
    return ParallelResult(
        output=output, writes=accounting, n_workers=n_workers
    )
