"""Schedule analysis: quantify load balance across parallelization strategies.

Utilities answering "how balanced is this decomposition?" — the question
Figure 2 and Section II revolve around — for merge-path, row-splitting,
and neighbor-group schedules of the same matrix, in one comparable view.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.neighbor_groups import NeighborGroupSchedule
from repro.baselines.row_splitting import RowSplitSchedule
from repro.core.schedule import MergePathSchedule
from repro.formats import CSRMatrix


@dataclass(frozen=True)
class LoadBalanceSummary:
    """Distribution of per-unit work for one decomposition.

    Attributes:
        strategy: Human-readable strategy name.
        n_units: Work units (threads, chunks, or groups).
        mean_work: Mean work per unit (non-zeros, plus row items for
            merge-path).
        max_work: Largest unit.
        p99_work: 99th-percentile unit.
        imbalance: ``max / mean`` — 1.0 is perfect.
        atomic_updates: Output updates requiring synchronization.
    """

    strategy: str
    n_units: int
    mean_work: float
    max_work: int
    p99_work: float
    imbalance: float
    atomic_updates: int


def _summarize(strategy: str, work: np.ndarray, atomics: int
               ) -> LoadBalanceSummary:
    work = np.asarray(work, dtype=np.float64)
    mean = float(work.mean()) if len(work) else 0.0
    return LoadBalanceSummary(
        strategy=strategy,
        n_units=len(work),
        mean_work=mean,
        max_work=int(work.max(initial=0)),
        p99_work=float(np.percentile(work, 99)) if len(work) else 0.0,
        imbalance=float(work.max(initial=0) / mean) if mean > 0 else 1.0,
        atomic_updates=atomics,
    )


def summarize_merge_path(schedule: MergePathSchedule) -> LoadBalanceSummary:
    """Load-balance summary of a merge-path schedule."""
    return _summarize(
        "merge-path",
        schedule.per_thread_items(),
        schedule.statistics.atomic_writes,
    )


def summarize_row_splitting(schedule: RowSplitSchedule) -> LoadBalanceSummary:
    """Load-balance summary of a row-splitting schedule."""
    return _summarize("row-splitting", schedule.per_thread_nnz, 0)


def summarize_neighbor_groups(
    schedule: NeighborGroupSchedule,
) -> LoadBalanceSummary:
    """Load-balance summary of a neighbor-group schedule."""
    return _summarize(
        "neighbor-groups", schedule.group_lengths, schedule.atomic_writes
    )


def compare_strategies(
    matrix: CSRMatrix,
    n_threads: int,
    group_size: int | None = None,
) -> list[LoadBalanceSummary]:
    """All three decompositions of one matrix at comparable unit counts.

    Args:
        matrix: Sparse input.
        n_threads: Thread count for merge-path and row-splitting.
        group_size: GNNAdvisor NG size (default: average degree).

    Returns:
        Summaries in [merge-path, row-splitting, neighbor-groups] order.
        Merge-path's imbalance is bounded by construction; row-splitting's
        explodes on power-law inputs; neighbor groups are balanced but all
        atomic.
    """
    if n_threads < 1:
        raise ValueError(f"n_threads must be >= 1, got {n_threads}")
    return [
        summarize_merge_path(MergePathSchedule(matrix, n_threads)),
        summarize_row_splitting(RowSplitSchedule.build(matrix, n_threads)),
        summarize_neighbor_groups(
            NeighborGroupSchedule.build(matrix, group_size)
        ),
    ]


def work_histogram(
    schedule: MergePathSchedule, n_bins: int = 10
) -> "tuple[np.ndarray, np.ndarray]":
    """Histogram of per-thread merge items (``(bin_edges, counts)``).

    The load-balance guarantee makes this distribution nearly degenerate:
    every thread sits at ``items_per_thread`` except the tail thread.
    """
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    items = schedule.per_thread_items()
    counts, edges = np.histogram(items, bins=n_bins)
    return edges, counts
