"""Merge-path cost auto-tuning (Section III-C / Figure 6).

The merge-path cost trades parallelism (low cost, many threads, many
partial rows) against synchronization (high cost, few threads, few atomic
updates).  :func:`tune_merge_path_cost` sweeps candidate costs through the
GPU timing model and returns the sweep — the machinery behind Figure 6 and
behind deployments that tune the cost for an unseen dimension size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.schedule import schedule_for_cost
from repro.core.thread_mapping import MIN_THREADS
from repro.formats import CSRMatrix

DEFAULT_COST_GRID = (2, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50)


@dataclass(frozen=True)
class CostSweep:
    """Result of sweeping the merge-path cost for one dimension size.

    Attributes:
        dim: Dense operand width the sweep was run for.
        costs: Candidate costs, ascending.
        cycles: Geometric-mean modeled cycles per cost (over all swept
            matrices).
        best_cost: Cost with the lowest modeled cycles.
        normalized_performance: Performance relative to the first cost in
            the grid (the paper normalizes to cost 2).
    """

    dim: int
    costs: tuple[int, ...]
    cycles: np.ndarray
    best_cost: int
    normalized_performance: np.ndarray


def tune_merge_path_cost(
    matrices: "list[CSRMatrix] | CSRMatrix",
    dim: int,
    costs: "tuple[int, ...]" = DEFAULT_COST_GRID,
    min_threads: int = MIN_THREADS,
    device=None,
) -> CostSweep:
    """Sweep merge-path costs through the GPU model and pick the best.

    Args:
        matrices: One matrix or a suite; suites are aggregated by
            geometric mean, as in the paper's Figure 6.
        dim: Dense operand width.
        costs: Candidate costs (ascending).
        min_threads: Small-graph thread floor.
        device: GPU model; defaults to the paper's Quadro RTX 6000.

    Returns:
        The :class:`CostSweep` with per-cost aggregate cycles.
    """
    # Imported lazily: repro.gpu depends on repro.core.
    from repro.gpu.device import quadro_rtx_6000
    from repro.gpu.kernels import mergepath_workload
    from repro.gpu.timing import simulate

    if isinstance(matrices, CSRMatrix):
        matrices = [matrices]
    if not matrices:
        raise ValueError("need at least one matrix to tune against")
    if list(costs) != sorted(costs) or len(costs) < 2:
        raise ValueError("costs must be an ascending grid of >= 2 entries")
    device = device or quadro_rtx_6000()

    aggregate = np.zeros(len(costs))
    for matrix in matrices:
        for i, cost in enumerate(costs):
            schedule = schedule_for_cost(matrix, cost, min_threads=min_threads)
            workload = mergepath_workload(matrix, dim, device, schedule=schedule)
            aggregate[i] += np.log(simulate(workload, device).cycles)
    cycles = np.exp(aggregate / len(matrices))
    best = int(np.argmin(cycles))
    return CostSweep(
        dim=dim,
        costs=tuple(costs),
        cycles=cycles,
        best_cost=int(costs[best]),
        normalized_performance=cycles[0] / cycles,
    )
