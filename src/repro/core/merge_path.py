"""Merge-path decomposition (Algorithm 1 of the paper).

The merge-path view of a CSR matrix treats the kernel as a two-way merge of

* list **A**: the row *end* offsets ``RP[1..n]`` (consuming one means
  "finish the current row and move to the next"), and
* list **B**: the natural numbers ``0..nnz-1`` (consuming one means
  "process one non-zero").

The merged sequence has length ``n + nnz`` (the *merge path length*).  An
equal split of that sequence among threads bounds each thread's combined
row-read + non-zero-process cost, which is exactly the paper's
load-balancing guarantee: no thread is overwhelmed by an arbitrarily long
row *or* by an arbitrarily large run of empty rows.

A thread boundary at diagonal ``k`` (points ``(i, j)`` with ``i + j = k``)
is located by a constrained binary search for the first ``i`` with
``RP[i + 1] + i + 1 > k``; because ``RP`` is non-decreasing that predicate
is monotone, so the production path resolves *all* boundaries with a single
vectorized ``searchsorted`` (:func:`merge_path_splits`).  The scalar
:func:`merge_path_search` mirrors the paper's pseudo-code and is kept both
as documentation and as a cross-check for the vectorized form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.formats import CSRMatrix


@dataclass(frozen=True)
class MergeCoordinate:
    """A point on the merge path.

    Attributes:
        row: Number of row-end markers consumed so far — equivalently, the
            index of the row currently being processed.
        nnz: Index of the next non-zero to process.
    """

    row: int
    nnz: int

    @property
    def diagonal(self) -> int:
        """The diagonal this coordinate lies on (``row + nnz``)."""
        return self.row + self.nnz


def merge_path_length(matrix: CSRMatrix) -> int:
    """Total merge-path length: rows plus non-zeros (Algorithm 1, line 2)."""
    return matrix.n_rows + matrix.nnz


def merge_path_search(matrix: CSRMatrix, diagonal: int) -> MergeCoordinate:
    """Locate the merge-path point on ``diagonal`` (Algorithm 1, lines 6-7).

    Performs the constrained binary search along the diagonal: among points
    ``(i, diagonal - i)``, find the smallest ``i`` such that the row-end
    marker ``RP[i + 1]`` has already been consumed, i.e.
    ``RP[i + 1] + (i + 1) > diagonal``.

    Args:
        matrix: CSR matrix being decomposed.
        diagonal: Target diagonal in ``[0, n_rows + nnz]``.

    Returns:
        The unique valid :class:`MergeCoordinate` on the diagonal.
    """
    if not 0 <= diagonal <= merge_path_length(matrix):
        raise ValueError(
            f"diagonal {diagonal} outside merge path "
            f"[0, {merge_path_length(matrix)}]"
        )
    row_pointers = matrix.row_pointers
    lo = max(0, diagonal - matrix.nnz)
    hi = min(diagonal, matrix.n_rows)
    steps = 0
    while lo < hi:
        mid = (lo + hi) // 2
        steps += 1
        # Has row mid's end marker been consumed by diagonal `diagonal`?
        if row_pointers[mid + 1] + mid + 1 > diagonal:
            hi = mid
        else:
            lo = mid + 1
    if obs.enabled():
        obs.counter("core.merge_path.searches").inc()
        obs.counter("core.merge_path.search_steps").inc(steps)
    return MergeCoordinate(row=lo, nnz=diagonal - lo)


def merge_path_splits(matrix: CSRMatrix, diagonals: np.ndarray) -> np.ndarray:
    """Vectorized merge-path search for many diagonals at once.

    Args:
        matrix: CSR matrix being decomposed.
        diagonals: 1-D array of diagonals, each in ``[0, n + nnz]``.

    Returns:
        ``(len(diagonals), 2)`` array of ``(row, nnz)`` coordinates,
        identical to calling :func:`merge_path_search` per diagonal.
    """
    diagonals = np.asarray(diagonals, dtype=np.int64)
    if len(diagonals) and (
        diagonals.min() < 0 or diagonals.max() > merge_path_length(matrix)
    ):
        raise ValueError("diagonal outside merge path range")
    # consumed[i] = diagonal at which row i's end marker has been consumed:
    # the marker RP[i+1] is merged after RP[i+1] non-zeros and i earlier
    # markers, i.e. it occupies merge position RP[i+1] + i (0-based), so it
    # is consumed once the diagonal exceeds that position.
    consumed = matrix.row_pointers[1:] + np.arange(1, matrix.n_rows + 1)
    rows = np.searchsorted(consumed, diagonals, side="right")
    if obs.enabled():
        # searchsorted performs one binary search per diagonal, each
        # ~log2(n_rows + 1) probes — the vectorized equivalent of the
        # scalar loop's step count.
        obs.counter("core.merge_path.searches").inc(len(diagonals))
        obs.counter("core.merge_path.search_steps").inc(
            int(len(diagonals) * np.ceil(np.log2(matrix.n_rows + 2)))
        )
    return np.stack([rows, diagonals - rows], axis=1)


def thread_diagonals(matrix: CSRMatrix, n_threads: int) -> np.ndarray:
    """Thread boundary diagonals (Algorithm 1, lines 3-5).

    Thread ``t`` owns merge items ``[diag[t], diag[t + 1])``.

    Args:
        matrix: CSR matrix being decomposed.
        n_threads: Number of threads; must be positive.

    Returns:
        Array of ``n_threads + 1`` non-decreasing diagonals starting at 0
        and ending at the merge path length.
    """
    if n_threads < 1:
        raise ValueError(f"n_threads must be >= 1, got {n_threads}")
    total = merge_path_length(matrix)
    items_per_thread = -(-total // n_threads) if total else 0  # ceil division
    diagonals = np.minimum(
        np.arange(n_threads + 1, dtype=np.int64) * items_per_thread, total
    )
    return diagonals
