"""SIMD thread-mapping policy and merge-path cost defaults (Section III-C).

The dense operand's dimension size rarely equals the SIMD width, so the
paper maps logical merge-path threads onto warps three ways:

* ``dim == lanes``: one thread per warp;
* ``dim > lanes``: each thread is *replicated* across ``dim / lanes``
  warps, each warp covering one 32-wide slice of the dimensions;
* ``dim < lanes``: ``lanes / dim`` threads *share* one warp, each owning a
  lane subset (relies on Volta-style independent thread scheduling; at the
  extreme of 16 threads per warp the divergence cost becomes visible and
  the paper responds by raising the merge-path cost).

The default merge-path cost per dimension size is the paper's empirically
tuned table from Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.merge_path import merge_path_length
from repro.formats import CSRMatrix

SIMD_LANES = 32
"""SIMD width of one warp on the evaluated GPU (NVIDIA, 32 lanes)."""

MIN_THREADS = 1024
"""Minimum spawned threads for small graphs (Section III-C threshold)."""

DEFAULT_COST_BY_DIM = {2: 50, 4: 15, 8: 15, 16: 20, 32: 30, 64: 35, 128: 50}
"""Best-performing merge-path cost per dimension size (paper, Figure 6)."""


@dataclass(frozen=True)
class ThreadMapping:
    """How logical threads map onto SIMD warps for a dimension size.

    Attributes:
        dim: Dense operand width (hidden dimension size).
        simd_lanes: Warp SIMD width.
        threads_per_warp: Logical threads co-resident in one warp
            (``> 1`` only when ``dim < simd_lanes``).
        warps_per_thread: Warps a single logical thread is replicated
            across (``> 1`` only when ``dim > simd_lanes``).
        lane_utilization: Fraction of SIMD lanes doing useful work.
        divergent_threads: Threads per warp taking independent control
            paths; the GPU model charges a penalty when this is large.
    """

    dim: int
    simd_lanes: int
    threads_per_warp: int
    warps_per_thread: int
    lane_utilization: float
    divergent_threads: int

    def warps_for_threads(self, n_threads: int) -> int:
        """Warps launched for ``n_threads`` logical threads."""
        if self.threads_per_warp > 1:
            return -(-n_threads // self.threads_per_warp)
        return n_threads * self.warps_per_thread


def map_threads_to_simd(dim: int, simd_lanes: int = SIMD_LANES) -> ThreadMapping:
    """Compute the Section III-C mapping for a dimension size.

    Args:
        dim: Dense operand width; must be positive.
        simd_lanes: SIMD width of a warp.

    Returns:
        The :class:`ThreadMapping` for this configuration.
    """
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    if simd_lanes < 1:
        raise ValueError(f"simd_lanes must be >= 1, got {simd_lanes}")
    if dim == simd_lanes:
        return ThreadMapping(dim, simd_lanes, 1, 1, 1.0, 1)
    if dim > simd_lanes:
        warps = -(-dim // simd_lanes)
        utilization = dim / (warps * simd_lanes)
        return ThreadMapping(dim, simd_lanes, 1, warps, utilization, 1)
    threads = simd_lanes // dim
    utilization = (threads * dim) / simd_lanes
    return ThreadMapping(dim, simd_lanes, threads, 1, utilization, threads)


def default_merge_path_cost(dim: int) -> int:
    """The paper's tuned merge-path cost for a dimension size.

    Dimensions outside the studied set fall back to the nearest studied
    size (log-scale nearest, since the table is indexed by powers of two).
    """
    if dim in DEFAULT_COST_BY_DIM:
        return DEFAULT_COST_BY_DIM[dim]
    sizes = sorted(DEFAULT_COST_BY_DIM)
    nearest = min(sizes, key=lambda s: abs(s - dim) / s)
    return DEFAULT_COST_BY_DIM[nearest]


def determine_thread_count(
    matrix: CSRMatrix,
    cost: int,
    min_threads: int = MIN_THREADS,
) -> int:
    """Thread count for a target merge-path cost (Section III-C).

    The count is the merge-path length divided by the cost, raised to
    ``min_threads`` when the graph is too small to expose parallelism and
    capped at one merge item per thread.
    """
    if cost < 1:
        raise ValueError(f"cost must be >= 1, got {cost}")
    total = merge_path_length(matrix)
    if total == 0:
        return 1
    n_threads = max(1, -(-total // cost))
    if n_threads < min_threads:
        n_threads = min_threads
    return max(1, min(n_threads, total))
